package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// headerSize is the byte length of a store header (magic through table) for
// the given metadata and segment counts.
func headerSize(metaLen, segCount int) uint64 {
	return uint64(4 + 4 + 4 + metaLen + 4 + segCount*tableEntrySize)
}

// buildHeader serializes the store header for segs, which must already be
// in (level, plane) order with absolute offsets assigned. Both Writer and
// StreamWriter emit their headers through this one function, which is what
// makes their outputs byte-identical.
func buildHeader(meta []byte, segs []segEntry) []byte {
	buf := make([]byte, 0, headerSize(len(meta), len(segs)))
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(meta)))
	buf = append(buf, meta...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(segs)))
	for _, s := range segs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.id.Level))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.id.Plane))
		buf = binary.LittleEndian.AppendUint64(buf, s.offset)
		buf = binary.LittleEndian.AppendUint64(buf, s.size)
		buf = binary.LittleEndian.AppendUint32(buf, s.crc)
	}
	return buf
}

// StreamWriter builds a segment store file without holding payloads in
// memory. Payloads are appended to a spill file as they arrive; Commit
// prepends the header (whose table — and the caller's metadata blob — are
// only known once every segment has been written) and splices the spill
// behind it. The result is byte-for-byte identical to Writer given the
// same segments, because the store format lays payloads out in
// (level, plane) order and StreamWriter requires exactly that arrival
// order — the ordered fan-in merge upstream guarantees it at any worker
// count.
//
// Memory held is one table entry (28 bytes) per segment plus a copy
// buffer; payload bytes never accumulate.
type StreamWriter struct {
	path  string
	spill *os.File
	segs  []segEntry
	off   uint64
	done  bool
}

// CreateStream starts a streaming segment store at path. The final file
// appears only at Commit; until then a ".spill" sibling holds the payload
// bytes.
func CreateStream(path string) (*StreamWriter, error) {
	spill, err := os.Create(path + ".spill")
	if err != nil {
		return nil, fmt.Errorf("storage: create spill for %s: %w", path, err)
	}
	return &StreamWriter{path: path, spill: spill}, nil
}

// WriteSegment appends one payload. Segments must arrive in strictly
// increasing (level, plane) order — the on-disk payload order — so the
// spill file is already final-layout and Commit is a straight splice. The
// payload is fully written before return; the caller may recycle it.
func (w *StreamWriter) WriteSegment(id SegmentID, payload []byte) error {
	if w.done {
		return fmt.Errorf("storage: write to finished stream writer")
	}
	if id.Level < 0 || id.Plane < 0 {
		return fmt.Errorf("storage: invalid segment id %+v", id)
	}
	if n := len(w.segs); n > 0 {
		prev := w.segs[n-1].id
		if id.Level < prev.Level || (id.Level == prev.Level && id.Plane <= prev.Plane) {
			return fmt.Errorf("storage: stream segments must arrive in (level, plane) order (got %+v after %+v)", id, prev)
		}
	}
	if _, err := w.spill.Write(payload); err != nil {
		return fmt.Errorf("storage: spill segment %+v: %w", id, err)
	}
	w.segs = append(w.segs, segEntry{
		id:     id,
		offset: w.off, // relative to data start; rebased at Commit
		size:   uint64(len(payload)),
		crc:    crc32.ChecksumIEEE(payload),
	})
	w.off += uint64(len(payload))
	return nil
}

// Commit finalizes the store with the opaque metadata blob: it writes the
// header and table to the destination path, splices the spilled payloads
// behind them, and removes the spill file.
func (w *StreamWriter) Commit(meta []byte) (err error) {
	if w.done {
		return fmt.Errorf("storage: commit on finished stream writer")
	}
	w.done = true
	defer func() {
		if w.spill != nil {
			w.spill.Close()
			os.Remove(w.spill.Name())
		}
	}()
	base := headerSize(len(meta), len(w.segs))
	for i := range w.segs {
		w.segs[i].offset += base
	}
	if _, err := w.spill.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("storage: rewind spill: %w", err)
	}
	f, err := os.Create(w.path)
	if err != nil {
		return fmt.Errorf("storage: create %s: %w", w.path, err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(w.path)
		}
	}()
	if _, err = f.Write(buildHeader(meta, w.segs)); err != nil {
		return fmt.Errorf("storage: write header: %w", err)
	}
	if _, err = io.Copy(f, w.spill); err != nil {
		return fmt.Errorf("storage: splice payloads: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("storage: close: %w", err)
	}
	return nil
}

// Abort discards the spill file without producing a store. Safe to call
// after Commit (it is then a no-op), which makes `defer w.Abort()` the
// idiomatic cleanup.
func (w *StreamWriter) Abort() {
	if w.spill != nil && !w.done {
		w.spill.Close()
		os.Remove(w.spill.Name())
	}
	w.done = true
	w.spill = nil
}
