package decompose

import (
	"pmgard/internal/grid"
	"pmgard/internal/obs"
)

// DecomposeObs is DecomposeWorkers with transform telemetry recorded into
// o: a "decompose" span with rank/level attrs, and counters
// decompose.transforms / decompose.passes (one pass per (step, axis) pair
// of the forward lifting schedule) / decompose.nodes. A nil o is exactly
// DecomposeWorkers.
func DecomposeObs(t *grid.Tensor, opt Options, workers int, o *obs.Obs) (*Decomposition, error) {
	if o == nil {
		return DecomposeWorkers(t, opt, workers)
	}
	sp := o.Span("decompose", nil)
	sp.SetAttr("levels", opt.Levels)
	sp.SetAttr("rank", t.NDim())
	d, err := DecomposeWorkers(t, opt, workers)
	if err == nil {
		o.Counter("decompose.transforms").Add(1)
		o.Counter("decompose.passes").Add(int64((opt.Levels - 1) * t.NDim()))
		o.Counter("decompose.nodes").Add(int64(len(t.Data())))
	}
	sp.End()
	return d, err
}

// RecomposeObs is Decomposition.Recompose with a "decompose.recompose"
// span and a decompose.recompositions counter recorded into o. A nil o is
// exactly Recompose.
func (d *Decomposition) RecomposeObs(o *obs.Obs) *grid.Tensor {
	if o == nil {
		return d.Recompose()
	}
	sp := o.Span("decompose.recompose", nil)
	sp.SetAttr("levels", d.opt.Levels)
	out := d.Recompose()
	o.Counter("decompose.recompositions").Add(1)
	o.Counter("decompose.passes").Add(int64((d.opt.Levels - 1) * out.NDim()))
	sp.End()
	return out
}
