// Package decompose implements the MGARD-style multilevel decomposition and
// recomposition of N-dimensional uniform-grid data (§II-B of the paper).
//
// The transform is a tensor-product lifting scheme applied level by level,
// fine to coarse. At each refinement step, along each axis:
//
//  1. Predict: nodes at odd active positions are replaced by their
//     difference from the multilinear interpolation of the adjacent even
//     (coarse) nodes. These differences are the level's detail
//     coefficients — the analogue of MGARD's multilevel coefficients
//     obtained by interpolation from the coarser grid.
//  2. Update (optional): even nodes absorb a weighted portion of the
//     neighbouring details. This mimics MGARD's orthogonal L2 projection:
//     the coarse approximation becomes a (near-)L2-optimal representative
//     rather than plain subsampling, which decorrelates levels and makes
//     coefficient magnitudes decay the way MGARD's do.
//
// Both steps are lifting steps, so the inverse transform is exact to the
// last bit: Recompose(Decompose(x)) == x with no floating-point tolerance
// needed beyond the arithmetic itself (the operations are reversed in
// reverse order with the same operands).
//
// The decomposition works for arbitrary grid extents (not just 2^k+1);
// boundary nodes without a right-hand coarse neighbour are predicted from
// the left neighbour alone.
package decompose

import (
	"fmt"
	"math"

	"pmgard/internal/bufpool"
	"pmgard/internal/grid"
	"pmgard/internal/interleave"
	"pmgard/internal/pool"
)

// Options configures a decomposition.
type Options struct {
	// Levels is the number of coefficient levels L (≥ 1). The transform
	// performs L-1 refinement steps; level 0 is the coarsest.
	Levels int
	// Update enables the L2-projection-like lifting update step.
	Update bool
	// UpdateWeight is the lifting update weight; 0.25 reproduces the
	// standard linear-wavelet update. Ignored when Update is false.
	UpdateWeight float64
}

// DefaultOptions returns the configuration used throughout the paper's
// experiments: a five-level hierarchy with the L2 correction enabled.
func DefaultOptions() Options {
	return Options{Levels: 5, Update: true, UpdateWeight: 0.25}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.Levels < 1 || o.Levels > 30 {
		return fmt.Errorf("decompose: Levels %d out of range [1,30]", o.Levels)
	}
	if o.Update && (o.UpdateWeight < 0 || o.UpdateWeight > 0.5) {
		return fmt.Errorf("decompose: UpdateWeight %v out of range [0,0.5]", o.UpdateWeight)
	}
	return nil
}

// ErrorAmplification returns the tight constant C such that, for a grid of
// the given rank, a perturbation of at most Err_l on every level-l
// coefficient yields a reconstruction perturbed by at most C·Σ_l Err_l in
// the max norm: each level's perturbation is amplified only during its own
// refinement step ((1+2w) per axis pass), and the remaining inverse steps
// are max-norm non-expansive, so the per-step factors do not compound
// across levels.
func (o Options) ErrorAmplification(rank int) float64 {
	if !o.Update {
		return 1
	}
	return math.Pow(1+2*o.UpdateWeight, float64(rank))
}

// NaiveErrorAmplification returns the compounded absolute-row-sum constant
// of the original error-control theory ([19], the paper's Eq. 6): every
// inverse step is bounded by its worst-case per-axis amplification and the
// factors are multiplied across all L-1 steps, ignoring both the
// telescoping structure and sign cancellation. The result is a valid but
// wildly pessimistic bound — the source of the requested-vs-achieved gap
// of Fig. 2 that motivates the paper.
func (o Options) NaiveErrorAmplification(rank int) float64 {
	if !o.Update {
		return 1
	}
	return math.Pow(1+2*o.UpdateWeight, float64(rank*(o.Levels-1)))
}

// Decomposition holds the per-level coefficient streams of one field
// together with the plan needed to recompose them.
type Decomposition struct {
	plan    *interleave.Plan
	opt     Options
	coeffs  [][]float64
	workers int
}

// Decompose transforms t into multilevel coefficients. The input tensor is
// not modified. The transform runs sequentially; use DecomposeWorkers for
// the parallel path.
func Decompose(t *grid.Tensor, opt Options) (*Decomposition, error) {
	return DecomposeWorkers(t, opt, 1)
}

// DecomposeWorkers transforms t into multilevel coefficients, fanning the
// independent grid lines of each lifting pass across at most `workers`
// goroutines (≤ 0 means GOMAXPROCS). Every node is computed from the same
// operands in the same order regardless of worker count, so the resulting
// coefficients are bit-identical to the sequential transform. The returned
// Decomposition remembers the worker count and applies it to Recompose.
func DecomposeWorkers(t *grid.Tensor, opt Options, workers int) (*Decomposition, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	plan, err := interleave.NewPlan(t.Dims(), opt.Levels)
	if err != nil {
		return nil, err
	}
	workers = pool.Clamp(workers)
	work := t.Clone()
	forward(work, opt, workers)
	d := &Decomposition{plan: plan, opt: opt, coeffs: make([][]float64, opt.Levels), workers: workers}
	for l := 0; l < opt.Levels; l++ {
		d.coeffs[l] = plan.Extract(work.Data(), l, nil)
	}
	return d, nil
}

// NewZero returns a Decomposition with all-zero coefficient streams for the
// given grid shape — the starting point when reassembling a partial
// retrieval from storage.
func NewZero(dims []int, opt Options) (*Decomposition, error) {
	return NewZeroWorkers(dims, opt, 1)
}

// NewZeroWorkers is NewZero with a worker count for the recomposition path
// (≤ 0 means GOMAXPROCS). Worker count never changes the reconstructed
// bytes, only how many goroutines compute them.
func NewZeroWorkers(dims []int, opt Options, workers int) (*Decomposition, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	plan, err := interleave.NewPlan(dims, opt.Levels)
	if err != nil {
		return nil, err
	}
	d := &Decomposition{plan: plan, opt: opt, coeffs: make([][]float64, opt.Levels), workers: pool.Clamp(workers)}
	for l, n := range plan.LevelSizes() {
		d.coeffs[l] = make([]float64, n)
	}
	return d, nil
}

// Workers returns the effective worker count used by the transform passes.
func (d *Decomposition) Workers() int { return d.workers }

// SetWorkers changes the worker count used by later Recompose calls (≤ 0
// means GOMAXPROCS).
func (d *Decomposition) SetWorkers(workers int) { d.workers = pool.Clamp(workers) }

// Plan returns the interleave plan of the decomposition.
func (d *Decomposition) Plan() *interleave.Plan { return d.plan }

// Options returns the transform options the decomposition was built with.
func (d *Decomposition) Options() Options { return d.opt }

// Levels returns the number of coefficient levels L.
func (d *Decomposition) Levels() int { return d.opt.Levels }

// Dims returns the original grid dimensions.
func (d *Decomposition) Dims() []int { return d.plan.Dims() }

// Coeffs returns the level-l coefficient stream. The slice is the
// decomposition's own storage; callers that mutate it change what
// Recompose reconstructs (this is how truncated retrieval is modelled).
func (d *Decomposition) Coeffs(l int) []float64 { return d.coeffs[l] }

// SetCoeffs replaces the level-l coefficient stream. The length must match
// the level size.
func (d *Decomposition) SetCoeffs(l int, c []float64) {
	if len(c) != len(d.coeffs[l]) {
		panic(fmt.Sprintf("decompose: SetCoeffs level %d length %d, want %d", l, len(c), len(d.coeffs[l])))
	}
	d.coeffs[l] = c
}

// CloneShape returns a new Decomposition sharing the plan, options and
// worker count but with zero-valued coefficient streams, used to assemble
// partial retrievals.
func (d *Decomposition) CloneShape() *Decomposition {
	c := &Decomposition{plan: d.plan, opt: d.opt, workers: d.workers, coeffs: make([][]float64, len(d.coeffs))}
	for l := range d.coeffs {
		c.coeffs[l] = make([]float64, len(d.coeffs[l]))
	}
	return c
}

// Recompose reconstructs the spatial field from the current coefficient
// streams, using the decomposition's worker count for the inverse passes.
func (d *Decomposition) Recompose() *grid.Tensor {
	work := grid.New(d.plan.Dims()...)
	for l := 0; l < d.opt.Levels; l++ {
		d.plan.Inject(work.Data(), l, d.coeffs[l])
	}
	inverse(work, d.opt, pool.Clamp(d.workers))
	return work
}

// RecomposeLevel reconstructs the approximation on the coarser grid that
// levels 0..upTo span, returning a tensor with ceil(n/2^s) nodes per axis
// (s = Levels-1-upTo). This is the paper's reduced-degrees-of-freedom mode:
// an analysis that can work at lower resolution skips both the I/O *and*
// the compute of the finer levels. upTo = Levels-1 returns the full grid.
func (d *Decomposition) RecomposeLevel(upTo int) (*grid.Tensor, error) {
	if upTo < 0 || upTo >= d.opt.Levels {
		return nil, fmt.Errorf("decompose: RecomposeLevel upTo %d out of [0,%d)", upTo, d.opt.Levels)
	}
	work := grid.New(d.plan.Dims()...)
	for l := 0; l <= upTo; l++ {
		d.plan.Inject(work.Data(), l, d.coeffs[l])
	}
	// Invert only the steps that refine within the kept levels.
	stop := d.opt.Levels - 1 - upTo
	rank := work.NDim()
	for s := d.opt.Levels - 2; s >= stop; s-- {
		h := 1 << s
		for axis := rank - 1; axis >= 0; axis-- {
			forEachLineWorkers(work, h, axis, pool.Clamp(d.workers), func(base, stride, count int) {
				if d.opt.Update {
					updateInverse(work.Data(), base, stride, count, d.opt.UpdateWeight)
				}
				predictInverse(work.Data(), base, stride, count)
			})
		}
	}
	// Gather the active sub-grid at step `stop`.
	dims := d.plan.Dims()
	step := 1 << stop
	outDims := make([]int, rank)
	for i, n := range dims {
		outDims[i] = (n-1)/step + 1
	}
	out := grid.New(outDims...)
	idx := make([]int, rank)
	src := make([]int, rank)
	var walk func(depth int)
	walk = func(depth int) {
		if depth == rank {
			out.Set(work.At(src...), idx...)
			return
		}
		for i := 0; i < outDims[depth]; i++ {
			idx[depth] = i
			src[depth] = i * step
			walk(depth + 1)
		}
	}
	walk(0)
	return out, nil
}

// forward applies the full multilevel transform in place. Within one
// (step, axis) pass every line is an independent slab — lines along the
// pass axis share no nodes — so the pass fans out across workers; passes
// themselves are barriers, preserving the sequential dataflow exactly.
func forward(t *grid.Tensor, opt Options, workers int) {
	rank := t.NDim()
	for s := 0; s < opt.Levels-1; s++ {
		h := 1 << s
		for axis := 0; axis < rank; axis++ {
			forEachLineWorkers(t, h, axis, workers, func(base, stride, count int) {
				predictForward(t.Data(), base, stride, count)
				if opt.Update {
					updateForward(t.Data(), base, stride, count, opt.UpdateWeight)
				}
			})
		}
	}
}

// inverse applies the full inverse transform in place, with the same
// per-pass line fan-out as forward.
func inverse(t *grid.Tensor, opt Options, workers int) {
	rank := t.NDim()
	for s := opt.Levels - 2; s >= 0; s-- {
		h := 1 << s
		for axis := rank - 1; axis >= 0; axis-- {
			forEachLineWorkers(t, h, axis, workers, func(base, stride, count int) {
				if opt.Update {
					updateInverse(t.Data(), base, stride, count, opt.UpdateWeight)
				}
				predictInverse(t.Data(), base, stride, count)
			})
		}
	}
}

// forEachLineWorkers is forEachLine with the lines of one pass distributed
// across a bounded worker pool. The sequential path (workers == 1) avoids
// materializing the line list; the parallel path enumerates line base
// offsets once and hands each worker a contiguous chunk. Lines are disjoint
// node sets, so scheduling cannot change any computed value.
func forEachLineWorkers(t *grid.Tensor, h, axis, workers int, fn func(base, stride, count int)) {
	if workers <= 1 {
		forEachLine(t, h, axis, fn)
		return
	}
	// The base list is per-pass scratch; draw it from the shared pool so
	// steady-state decomposition stops allocating it. Appends that outgrow
	// the pooled backing reallocate once, and the grown array is what gets
	// filed back, so repeated passes converge on a big-enough buffer.
	bases := bufpool.Ints(64)[:0]
	defer func() { bufpool.PutInts(bases) }()
	stride, count := 0, 0
	forEachLine(t, h, axis, func(base, s, c int) {
		bases = append(bases, base)
		stride, count = s, c
	})
	if len(bases) < 2 {
		for _, b := range bases {
			fn(b, stride, count)
		}
		return
	}
	pool.RunChunks(len(bases), workers, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			fn(bases[i], stride, count)
		}
		return nil
	})
}

// forEachLine invokes fn for every 1-D line of the step-h active grid along
// the given axis. base is the flat offset of the line's first active node,
// stride the flat distance between consecutive active nodes on the line, and
// count the number of active nodes. Lines with fewer than two active nodes
// are skipped.
func forEachLine(t *grid.Tensor, h, axis int, fn func(base, stride, count int)) {
	dims := t.Dims()
	rank := len(dims)
	// Active node count and flat stride per axis.
	counts := make([]int, rank)
	flatStride := make([]int, rank)
	s := 1
	for d := rank - 1; d >= 0; d-- {
		flatStride[d] = s
		s *= dims[d]
	}
	for d := 0; d < rank; d++ {
		counts[d] = (dims[d]-1)/h + 1
	}
	if counts[axis] < 2 {
		return
	}
	lineStride := h * flatStride[axis]
	// Odometer over all other axes' active positions.
	pos := make([]int, rank)
	for {
		base := 0
		for d := 0; d < rank; d++ {
			if d != axis {
				base += pos[d] * h * flatStride[d]
			}
		}
		fn(base, lineStride, counts[axis])
		// Advance odometer, skipping the transform axis.
		d := rank - 1
		for ; d >= 0; d-- {
			if d == axis {
				continue
			}
			pos[d]++
			if pos[d] < counts[d] {
				break
			}
			pos[d] = 0
		}
		if d < 0 {
			return
		}
	}
}

// predictForward replaces odd active nodes with their interpolation
// residual.
func predictForward(data []float64, base, stride, count int) {
	for j := 1; j < count; j += 2 {
		var pred float64
		if j+1 < count {
			pred = 0.5 * (data[base+(j-1)*stride] + data[base+(j+1)*stride])
		} else {
			pred = data[base+(j-1)*stride]
		}
		data[base+j*stride] -= pred
	}
}

// predictInverse restores odd active nodes from residual plus prediction.
func predictInverse(data []float64, base, stride, count int) {
	for j := 1; j < count; j += 2 {
		var pred float64
		if j+1 < count {
			pred = 0.5 * (data[base+(j-1)*stride] + data[base+(j+1)*stride])
		} else {
			pred = data[base+(j-1)*stride]
		}
		data[base+j*stride] += pred
	}
}

// updateForward adds a weighted portion of neighbouring details to the even
// nodes, completing the L2-style lifting step.
func updateForward(data []float64, base, stride, count int, w float64) {
	for j := 0; j < count; j += 2 {
		var sum float64
		if j-1 >= 0 {
			sum += data[base+(j-1)*stride]
		}
		if j+1 < count {
			sum += data[base+(j+1)*stride]
		}
		data[base+j*stride] += w * sum
	}
}

// updateInverse removes the update contribution from even nodes.
func updateInverse(data []float64, base, stride, count int, w float64) {
	for j := 0; j < count; j += 2 {
		var sum float64
		if j-1 >= 0 {
			sum += data[base+(j-1)*stride]
		}
		if j+1 < count {
			sum += data[base+(j+1)*stride]
		}
		data[base+j*stride] -= w * sum
	}
}
