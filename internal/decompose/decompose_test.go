package decompose

import (
	"math"
	"math/rand"
	"testing"

	"pmgard/internal/grid"
)

func randomTensor(rng *rand.Rand, dims ...int) *grid.Tensor {
	t := grid.New(dims...)
	for i := range t.Data() {
		t.Data()[i] = rng.NormFloat64() * 10
	}
	return t
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Levels: 0},
		{Levels: 31},
		{Levels: 3, Update: true, UpdateWeight: -0.1},
		{Levels: 3, Update: true, UpdateWeight: 0.6},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", o)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("DefaultOptions invalid: %v", err)
	}
}

func TestRoundTripExact1D(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 3, 5, 9, 17, 16, 20, 33} {
		orig := randomTensor(rng, n)
		for _, opt := range []Options{
			{Levels: 3},
			{Levels: 3, Update: true, UpdateWeight: 0.25},
			{Levels: 5, Update: true, UpdateWeight: 0.25},
		} {
			d, err := Decompose(orig, opt)
			if err != nil {
				t.Fatal(err)
			}
			rec := d.Recompose()
			if diff := grid.MaxAbsDiff(orig, rec); diff > 1e-11 {
				t.Errorf("n=%d opt=%+v round trip error %g", n, opt, diff)
			}
		}
	}
}

func TestRoundTripExact2D3D(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := [][]int{{9, 9}, {17, 5}, {8, 12}, {9, 9, 9}, {7, 11, 5}, {16, 16, 16}}
	opt := DefaultOptions()
	for _, dims := range cases {
		orig := randomTensor(rng, dims...)
		d, err := Decompose(orig, opt)
		if err != nil {
			t.Fatal(err)
		}
		rec := d.Recompose()
		if diff := grid.MaxAbsDiff(orig, rec); diff > 1e-10 {
			t.Errorf("dims=%v round trip error %g", dims, diff)
		}
	}
}

func TestDecomposeDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := randomTensor(rng, 9, 9)
	before := orig.Clone()
	if _, err := Decompose(orig, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if grid.MaxAbsDiff(orig, before) != 0 {
		t.Fatal("Decompose modified its input")
	}
}

func TestLinearFieldHasZeroDetails(t *testing.T) {
	// The predict step interpolates linearly, so a linear field produces
	// (near-)zero detail coefficients on every non-coarse level.
	n := 17
	f := grid.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			f.Set(3*float64(i)-2*float64(j)+1, i, j)
		}
	}
	d, err := Decompose(f, Options{Levels: 4}) // predict-only
	if err != nil {
		t.Fatal(err)
	}
	for l := 1; l < d.Levels(); l++ {
		for i, c := range d.Coeffs(l) {
			if math.Abs(c) > 1e-10 {
				t.Fatalf("level %d coeff %d = %g, want ~0 for linear field", l, i, c)
			}
		}
	}
}

func TestSmoothFieldCoefficientDecay(t *testing.T) {
	// For a smooth field, max |coefficient| should be much larger on the
	// coarse level than on the finest detail level.
	n := 33
	f := grid.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x, y := float64(i)/float64(n-1), float64(j)/float64(n-1)
			f.Set(math.Sin(3*x)*math.Cos(2*y)*100, i, j)
		}
	}
	d, err := Decompose(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	maxAbs := func(s []float64) float64 {
		m := 0.0
		for _, v := range s {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		return m
	}
	coarse := maxAbs(d.Coeffs(0))
	finest := maxAbs(d.Coeffs(d.Levels() - 1))
	if finest*10 > coarse {
		t.Fatalf("no coefficient decay: coarse %g, finest %g", coarse, finest)
	}
}

func TestZeroCoefficientsRecomposeToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d, err := Decompose(randomTensor(rng, 9, 9), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	z := d.CloneShape()
	rec := z.Recompose()
	if rec.LinfNorm() != 0 {
		t.Fatal("zero coefficients did not recompose to zero field")
	}
}

func TestCloneShapeMatchesSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d, err := Decompose(randomTensor(rng, 9, 5), Options{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := d.CloneShape()
	for l := 0; l < d.Levels(); l++ {
		if len(c.Coeffs(l)) != len(d.Coeffs(l)) {
			t.Fatalf("level %d: clone size %d, want %d", l, len(c.Coeffs(l)), len(d.Coeffs(l)))
		}
	}
}

func TestSetCoeffsPanicsOnWrongLength(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d, _ := Decompose(randomTensor(rng, 9), Options{Levels: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("SetCoeffs with wrong length did not panic")
		}
	}()
	d.SetCoeffs(0, make([]float64, 1))
}

func TestTransformIsLinear(t *testing.T) {
	// Decompose(a + 2b) == Decompose(a) + 2·Decompose(b), level by level.
	rng := rand.New(rand.NewSource(7))
	a := randomTensor(rng, 9, 9)
	b := randomTensor(rng, 9, 9)
	sum := grid.New(9, 9)
	for i := range sum.Data() {
		sum.Data()[i] = a.Data()[i] + 2*b.Data()[i]
	}
	opt := DefaultOptions()
	da, _ := Decompose(a, opt)
	db, _ := Decompose(b, opt)
	ds, _ := Decompose(sum, opt)
	for l := 0; l < opt.Levels; l++ {
		ca, cb, cs := da.Coeffs(l), db.Coeffs(l), ds.Coeffs(l)
		for i := range cs {
			want := ca[i] + 2*cb[i]
			if math.Abs(cs[i]-want) > 1e-9 {
				t.Fatalf("linearity violated at level %d index %d: %g vs %g", l, i, cs[i], want)
			}
		}
	}
}

func TestErrorAmplificationBoundHolds(t *testing.T) {
	// Perturb each level's coefficients by a known amount and verify the
	// reconstruction error respects C·Σ_l Err_l (the Eq. 6 bound).
	rng := rand.New(rand.NewSource(8))
	opt := DefaultOptions()
	orig := randomTensor(rng, 17, 17, 9)
	d, err := Decompose(orig, opt)
	if err != nil {
		t.Fatal(err)
	}
	sumErr := 0.0
	for l := 0; l < d.Levels(); l++ {
		mag := math.Pow(10, float64(-l)) // different scale per level
		cs := d.Coeffs(l)
		for i := range cs {
			cs[i] += mag * (2*rng.Float64() - 1)
		}
		sumErr += mag
	}
	rec := d.Recompose()
	achieved := grid.MaxAbsDiff(orig, rec)
	bound := opt.ErrorAmplification(3) * sumErr
	if achieved > bound {
		t.Fatalf("achieved error %g exceeds theory bound %g", achieved, bound)
	}
	// The bound should also be pessimistic — that is the paper's premise.
	if achieved > bound/2 {
		t.Logf("note: bound unusually tight (achieved %g, bound %g)", achieved, bound)
	}
}

func TestErrorAmplificationConstants(t *testing.T) {
	if c := (Options{Levels: 5}).ErrorAmplification(3); c != 1 {
		t.Fatalf("predict-only amplification = %v, want 1", c)
	}
	o := Options{Levels: 5, Update: true, UpdateWeight: 0.25}
	want := math.Pow(1.5, 3)
	if c := o.ErrorAmplification(3); math.Abs(c-want) > 1e-12 {
		t.Fatalf("amplification = %v, want %v", c, want)
	}
}

func TestPartialReconstructionImprovesWithLevels(t *testing.T) {
	// Keeping more levels (zeroing fewer) should weakly decrease error.
	rng := rand.New(rand.NewSource(9))
	n := 33
	f := grid.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x, y := float64(i)/float64(n-1), float64(j)/float64(n-1)
			f.Set(math.Sin(5*x+2*y)+0.05*rng.NormFloat64(), i, j)
		}
	}
	opt := DefaultOptions()
	d, err := Decompose(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	prevErr := math.Inf(1)
	for keep := 1; keep <= opt.Levels; keep++ {
		p := d.CloneShape()
		for l := 0; l < keep; l++ {
			copy(p.Coeffs(l), d.Coeffs(l))
		}
		e := grid.RMSE(f, p.Recompose())
		if e > prevErr*1.05 {
			t.Fatalf("RMSE rose from %g to %g when keeping %d levels", prevErr, e, keep)
		}
		prevErr = e
	}
	if prevErr > 1e-10 {
		t.Fatalf("keeping all levels should be exact, RMSE=%g", prevErr)
	}
}

func TestRoundTripPropertyRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 25; trial++ {
		rank := 1 + rng.Intn(3)
		dims := make([]int, rank)
		for i := range dims {
			dims[i] = 2 + rng.Intn(20)
		}
		levels := 1 + rng.Intn(5)
		opt := Options{Levels: levels, Update: rng.Intn(2) == 0, UpdateWeight: 0.25}
		orig := randomTensor(rng, dims...)
		d, err := Decompose(orig, opt)
		if err != nil {
			t.Fatal(err)
		}
		rec := d.Recompose()
		if diff := grid.MaxAbsDiff(orig, rec); diff > 1e-9 {
			t.Fatalf("dims=%v levels=%d update=%v: round trip error %g",
				dims, levels, opt.Update, diff)
		}
	}
}

func TestRoundTrip4D(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	orig := randomTensor(rng, 5, 7, 3, 9)
	for _, opt := range []Options{{Levels: 2}, {Levels: 3, Update: true, UpdateWeight: 0.25}} {
		d, err := Decompose(orig, opt)
		if err != nil {
			t.Fatal(err)
		}
		if diff := grid.MaxAbsDiff(orig, d.Recompose()); diff > 1e-10 {
			t.Errorf("4-D round trip error %g under %+v", diff, opt)
		}
	}
}

func TestSingleLevelIsIdentity(t *testing.T) {
	// Levels=1 performs no transform: coefficients equal the data.
	rng := rand.New(rand.NewSource(12))
	orig := randomTensor(rng, 6, 6)
	d, err := Decompose(orig, Options{Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	coeffs := d.Coeffs(0)
	for i, v := range orig.Data() {
		if coeffs[i] != v {
			t.Fatalf("levels=1 transformed the data at %d", i)
		}
	}
}

func TestMoreLevelsThanResolution(t *testing.T) {
	// A 3-node grid with 6 levels: the deep levels are empty but the
	// transform must still round trip.
	rng := rand.New(rand.NewSource(13))
	orig := randomTensor(rng, 3)
	d, err := Decompose(orig, Options{Levels: 6, Update: true, UpdateWeight: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if diff := grid.MaxAbsDiff(orig, d.Recompose()); diff > 1e-12 {
		t.Fatalf("tiny-grid round trip error %g", diff)
	}
}

func TestNewZeroMatchesDecomposeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	orig := randomTensor(rng, 9, 5)
	opt := DefaultOptions()
	d, err := Decompose(orig, opt)
	if err != nil {
		t.Fatal(err)
	}
	z, err := NewZero(orig.Dims(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < opt.Levels; l++ {
		if len(z.Coeffs(l)) != len(d.Coeffs(l)) {
			t.Fatalf("level %d: NewZero size %d, Decompose size %d",
				l, len(z.Coeffs(l)), len(d.Coeffs(l)))
		}
		for i, v := range z.Coeffs(l) {
			if v != 0 {
				t.Fatalf("NewZero level %d index %d = %g", l, i, v)
			}
		}
	}
	if _, err := NewZero([]int{4}, Options{Levels: 0}); err == nil {
		t.Fatal("NewZero accepted invalid options")
	}
}

func TestRecomposeLevelFullMatchesRecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	orig := randomTensor(rng, 17, 9)
	opt := DefaultOptions()
	d, err := Decompose(orig, opt)
	if err != nil {
		t.Fatal(err)
	}
	full, err := d.RecomposeLevel(opt.Levels - 1)
	if err != nil {
		t.Fatal(err)
	}
	if diff := grid.MaxAbsDiff(full, d.Recompose()); diff != 0 {
		t.Fatalf("full-level RecomposeLevel differs from Recompose by %g", diff)
	}
}

func TestRecomposeLevelDims(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	orig := randomTensor(rng, 17, 17, 17)
	opt := DefaultOptions()
	d, err := Decompose(orig, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Level 0 alone spans the coarsest grid: step 16 → 2 nodes per axis.
	wantDims := [][]int{{2, 2, 2}, {3, 3, 3}, {5, 5, 5}, {9, 9, 9}, {17, 17, 17}}
	for upTo := 0; upTo < opt.Levels; upTo++ {
		coarse, err := d.RecomposeLevel(upTo)
		if err != nil {
			t.Fatal(err)
		}
		for ax, want := range wantDims[upTo] {
			if coarse.Dims()[ax] != want {
				t.Fatalf("upTo=%d: dims %v, want %v", upTo, coarse.Dims(), wantDims[upTo])
			}
		}
	}
}

func TestRecomposeLevelApproximatesDownsample(t *testing.T) {
	// For a smooth field, the coarse reconstruction should be close to the
	// multilinear downsample of the original (it is an L2-flavoured
	// projection, not identical, but must track the large-scale shape).
	n := 33
	f := grid.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x, y := float64(i)/float64(n-1), float64(j)/float64(n-1)
			f.Set(math.Sin(2*x+y)*10, i, j)
		}
	}
	opt := DefaultOptions()
	d, err := Decompose(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := d.RecomposeLevel(2) // 9×9
	if err != nil {
		t.Fatal(err)
	}
	down := f.Resample(coarse.Dims()...)
	if diff := grid.MaxAbsDiff(coarse, down); diff > 0.5 {
		t.Fatalf("coarse reconstruction deviates from downsample by %g", diff)
	}
}

func TestRecomposeLevelValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d, _ := Decompose(randomTensor(rng, 9), Options{Levels: 3})
	for _, upTo := range []int{-1, 3} {
		if _, err := d.RecomposeLevel(upTo); err == nil {
			t.Fatalf("RecomposeLevel(%d) accepted", upTo)
		}
	}
}
