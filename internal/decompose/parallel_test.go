package decompose

import (
	"math/rand"
	"testing"

	"pmgard/internal/grid"
)

// TestDecomposeWorkersBitIdentical asserts the determinism invariant of the
// parallel transform: every worker count produces coefficients bit-identical
// to the sequential path, on a spread of shapes including non-dyadic and
// degenerate extents.
func TestDecomposeWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][]int{{64}, {33, 33}, {17, 17, 17}, {9, 30}, {5, 6, 7}, {2, 2}, {31}}
	for _, dims := range shapes {
		f := randomTensor(rng, dims...)
		for _, opt := range []Options{
			{Levels: 3},
			{Levels: 4, Update: true, UpdateWeight: 0.25},
		} {
			if opt.Levels > 1 {
				// Shrink hierarchy for tiny grids so the plan stays valid.
				for _, d := range dims {
					for (1<<(opt.Levels-1)) >= d && opt.Levels > 1 {
						opt.Levels--
					}
				}
			}
			ref, err := DecomposeWorkers(f, opt, 1)
			if err != nil {
				t.Fatalf("dims %v: %v", dims, err)
			}
			for _, workers := range []int{2, 3, 8} {
				par, err := DecomposeWorkers(f, opt, workers)
				if err != nil {
					t.Fatalf("dims %v workers %d: %v", dims, workers, err)
				}
				for l := 0; l < opt.Levels; l++ {
					a, b := ref.Coeffs(l), par.Coeffs(l)
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("dims %v workers %d level %d: coeff %d differs (%g vs %g)",
								dims, workers, l, i, a[i], b[i])
						}
					}
				}
			}
		}
	}
}

// TestRecomposeWorkersBitIdentical asserts parallel recomposition matches
// the sequential inverse bit for bit, including through RecomposeLevel.
func TestRecomposeWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := randomTensor(rng, 17, 17, 17)
	opt := Options{Levels: 4, Update: true, UpdateWeight: 0.25}
	seq, err := DecomposeWorkers(f, opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Recompose()
	wantCoarse, err := seq.RecomposeLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := DecomposeWorkers(f, opt, workers)
		if err != nil {
			t.Fatal(err)
		}
		got := par.Recompose()
		if d := grid.MaxAbsDiff(want, got); d != 0 {
			t.Fatalf("workers %d: Recompose differs by %g", workers, d)
		}
		gotCoarse, err := par.RecomposeLevel(2)
		if err != nil {
			t.Fatal(err)
		}
		if d := grid.MaxAbsDiff(wantCoarse, gotCoarse); d != 0 {
			t.Fatalf("workers %d: RecomposeLevel differs by %g", workers, d)
		}
	}
}

// TestSetWorkersRoundTrip checks the worker count survives the setter and
// a parallel round trip is still exact.
func TestSetWorkersRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := randomTensor(rng, 33, 33)
	d, err := DecomposeWorkers(f, Options{Levels: 5, Update: true, UpdateWeight: 0.25}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", d.Workers())
	}
	d.SetWorkers(0) // hardware default
	if d.Workers() < 1 {
		t.Fatalf("SetWorkers(0) left %d", d.Workers())
	}
	rec := d.Recompose()
	// Same tolerance as the sequential round-trip tests; bitwise equality
	// is guaranteed across worker counts, not across a full round trip.
	if diff := grid.MaxAbsDiff(f, rec); diff > 1e-11 {
		t.Fatalf("parallel round trip error %g", diff)
	}
}
