package servecache

import (
	"context"
	"errors"
	"testing"
	"time"

	"pmgard/internal/obs"
)

// spanCtx returns a cancellable context carrying a fresh root span in tr,
// plus the root (so tests can End it and read the trace).
func spanCtx(tr *obs.Tracer, traceID string) (context.Context, context.CancelFunc, *obs.Span) {
	root := tr.StartTrace("req", traceID)
	ctx, cancel := context.WithCancel(context.Background())
	return obs.ContextWithSpan(ctx, root), cancel, root
}

// findSpan returns the first span with the given name, failing t otherwise.
func findSpan(t *testing.T, spans []obs.SpanRecord, name string) obs.SpanRecord {
	t.Helper()
	for _, rec := range spans {
		if rec.Name == name {
			return rec
		}
	}
	t.Fatalf("no %q span in %+v", name, spans)
	return obs.SpanRecord{}
}

// TestCancelledWaiterSpanStatus extends the detach contract to tracing: a
// waiter killed mid-flight must end its cache span with status "cancelled"
// in its own trace, while the surviving waiter's trace records a clean
// span — one request's death never bleeds into another's timeline.
func TestCancelledWaiterSpanStatus(t *testing.T) {
	c := New(0)
	g := &gatedFetch{gate: make(chan struct{}), raw: []byte{1, 2, 3}}
	key := Key{Field: "f", Level: 1, Plane: 2}

	leaderTracer := obs.NewTracer(0)
	leaderCtx, leaderCancel, leaderRoot := spanCtx(leaderTracer, "11111111111111111111111111111111")
	defer leaderCancel()
	leaderDone := make(chan error, 1)
	go func() {
		_, _, _, err := c.GetOrFetchCtx(leaderCtx, key, g.fetch)
		leaderDone <- err
	}()
	waitFor(t, func() bool { return g.calls.Load() == 1 })

	survTracer := obs.NewTracer(0)
	survCtx, survCancel, survRoot := spanCtx(survTracer, "22222222222222222222222222222222")
	defer survCancel()
	survDone := make(chan error, 1)
	go func() {
		_, _, _, err := c.GetOrFetchCtx(survCtx, key, g.fetch)
		survDone <- err
	}()
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		f, ok := c.flights[key]
		return ok && f.waiters == 2
	})

	// Kill the leader; the survivor keeps the flight alive.
	leaderCancel()
	select {
	case err := <-leaderDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled leader err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled leader did not return")
	}
	leaderRoot.End()

	leaderGet := findSpan(t, leaderTracer.Timeline(), "servecache.get")
	if leaderGet.Status != obs.StatusCancelled {
		t.Fatalf("cancelled waiter span status = %q, want %q", leaderGet.Status, obs.StatusCancelled)
	}
	if leaderGet.TraceID != "11111111111111111111111111111111" {
		t.Fatalf("cancelled waiter span trace id = %q", leaderGet.TraceID)
	}
	if leaderGet.Attrs["outcome"] != "miss" {
		t.Fatalf("leader outcome = %v, want miss", leaderGet.Attrs["outcome"])
	}
	if leaderGet.Attrs["detached"] != true {
		t.Fatalf("leader span not marked detached: %+v", leaderGet.Attrs)
	}

	// Release the fetch; the survivor's trace stays intact and clean.
	close(g.gate)
	select {
	case err := <-survDone:
		if err != nil {
			t.Fatalf("survivor err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("survivor did not complete")
	}
	survRoot.End()
	survGet := findSpan(t, survTracer.Timeline(), "servecache.get")
	if survGet.Status != "" {
		t.Fatalf("survivor span status = %q, want ok", survGet.Status)
	}
	if survGet.TraceID != "22222222222222222222222222222222" {
		t.Fatalf("survivor span trace id = %q", survGet.TraceID)
	}
	if survGet.Attrs["outcome"] != "coalesced" {
		t.Fatalf("survivor outcome = %v, want coalesced", survGet.Attrs["outcome"])
	}
	// Neither trace leaked into the other.
	for _, rec := range survTracer.Timeline() {
		if rec.TraceID != "22222222222222222222222222222222" {
			t.Fatalf("foreign span in survivor trace: %+v", rec)
		}
	}
}

// TestCacheHitSpanOutcome pins the hit-path span shape: outcome=hit with
// the payload byte count.
func TestCacheHitSpanOutcome(t *testing.T) {
	c := New(0)
	g := &gatedFetch{gate: make(chan struct{}), raw: []byte{9, 9}}
	close(g.gate)
	key := Key{Field: "f", Level: 0, Plane: 0}

	tr := obs.NewTracer(0)
	ctx, cancel, root := spanCtx(tr, "33333333333333333333333333333333")
	defer cancel()
	if _, _, _, err := c.GetOrFetchCtx(ctx, key, g.fetch); err != nil {
		t.Fatal(err)
	}
	if _, _, hit, err := c.GetOrFetchCtx(ctx, key, g.fetch); err != nil || !hit {
		t.Fatalf("second get: hit=%v err=%v", hit, err)
	}
	root.End()
	var hits, misses int
	for _, rec := range tr.Timeline() {
		if rec.Name != "servecache.get" {
			continue
		}
		switch rec.Attrs["outcome"] {
		case "hit":
			hits++
			if rec.Attrs["bytes"] != int64(2) {
				t.Fatalf("hit span bytes = %v, want 2", rec.Attrs["bytes"])
			}
		case "miss":
			misses++
		}
	}
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}
