package servecache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"pmgard/internal/obs"
)

// fetchFor builds a deterministic fetch closure that records how many times
// it ran.
func fetchFor(key Key, calls *atomic.Int64, size int) Fetch {
	return func() ([]byte, int64, error) {
		calls.Add(1)
		raw := bytes.Repeat([]byte{byte(key.Level*31 + key.Plane)}, size)
		return raw, int64(size / 2), nil
	}
}

func TestGetOrFetchHitMissAccounting(t *testing.T) {
	c := New(0)
	key := Key{Field: "Jx@0", Level: 1, Plane: 2}
	var calls atomic.Int64
	raw1, payload1, hit, err := c.GetOrFetch(key, fetchFor(key, &calls, 64))
	if err != nil || hit {
		t.Fatalf("first read: hit=%v err=%v, want miss", hit, err)
	}
	raw2, payload2, hit, err := c.GetOrFetch(key, fetchFor(key, &calls, 64))
	if err != nil || !hit {
		t.Fatalf("second read: hit=%v err=%v, want hit", hit, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("fetch ran %d times, want 1", calls.Load())
	}
	if !bytes.Equal(raw1, raw2) || payload1 != payload2 {
		t.Fatal("hit returned different bytes or payload size than the miss")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 64 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry, 64 bytes", st)
	}
}

// TestSingleflightCoalesces is the dedup contract under -race: M goroutines
// asking for the same cold plane trigger exactly one fetch, and everyone
// gets its bytes.
func TestSingleflightCoalesces(t *testing.T) {
	c := New(0)
	key := Key{Field: "Jx@0", Level: 0, Plane: 0}
	var calls atomic.Int64
	release := make(chan struct{})
	fetch := func() ([]byte, int64, error) {
		calls.Add(1)
		<-release // hold the flight open until every goroutine has queued
		return []byte{1, 2, 3, 4}, 4, nil
	}
	const m = 16
	var started, done sync.WaitGroup
	started.Add(m)
	done.Add(m)
	errs := make([]error, m)
	for i := 0; i < m; i++ {
		go func(i int) {
			defer done.Done()
			started.Done()
			raw, payload, _, err := c.GetOrFetch(key, fetch)
			if err == nil && (!bytes.Equal(raw, []byte{1, 2, 3, 4}) || payload != 4) {
				err = fmt.Errorf("wrong result raw=%v payload=%d", raw, payload)
			}
			errs[i] = err
		}(i)
	}
	started.Wait()
	close(release)
	done.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("fetch ran %d times for %d concurrent readers, want 1", calls.Load(), m)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	// Late arrivals (after the insert) count as hits; the rest coalesced
	// onto the flight. Either way nobody fetched twice.
	if st.Hits+st.Coalesced != m-1 {
		t.Fatalf("hits (%d) + coalesced (%d) = %d, want %d", st.Hits, st.Coalesced, st.Hits+st.Coalesced, m-1)
	}
}

// TestEvictionThenRefetch exercises the LRU boundary: a budget of two
// planes, three planes touched, the coldest evicted and transparently
// refetched with identical bytes.
func TestEvictionThenRefetch(t *testing.T) {
	c := New(128) // two 64-byte planes
	var calls atomic.Int64
	keys := []Key{
		{Field: "f", Level: 0, Plane: 0},
		{Field: "f", Level: 0, Plane: 1},
		{Field: "f", Level: 0, Plane: 2},
	}
	first := make([][]byte, len(keys))
	for i, k := range keys {
		raw, _, _, err := c.GetOrFetch(k, fetchFor(k, &calls, 64))
		if err != nil {
			t.Fatal(err)
		}
		first[i] = raw
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 128 {
		t.Fatalf("stats after overflow = %+v, want 1 eviction, 2 entries, 128 bytes", st)
	}
	// keys[0] was least recently used and must have been evicted: reading
	// it again refetches and returns identical bytes.
	raw, _, hit, err := c.GetOrFetch(keys[0], fetchFor(keys[0], &calls, 64))
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("evicted plane reported as a cache hit")
	}
	if !bytes.Equal(raw, first[0]) {
		t.Fatal("refetched plane differs from the original")
	}
	if calls.Load() != 4 {
		t.Fatalf("fetch ran %d times, want 4 (3 cold + 1 refetch)", calls.Load())
	}
	// keys[2] stayed resident through the refetch eviction cycle or was
	// evicted in turn — either way a hit or a refetch must return the same
	// bytes.
	raw, _, _, err = c.GetOrFetch(keys[2], fetchFor(keys[2], &calls, 64))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, first[2]) {
		t.Fatal("plane 2 bytes changed across eviction churn")
	}
}

func TestOversizePlaneIsServedButNotCached(t *testing.T) {
	c := New(16)
	key := Key{Field: "f", Level: 0, Plane: 0}
	var calls atomic.Int64
	for i := 0; i < 2; i++ {
		raw, _, hit, err := c.GetOrFetch(key, fetchFor(key, &calls, 64))
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatal("oversize plane reported as cached")
		}
		if len(raw) != 64 {
			t.Fatalf("read %d bytes, want 64", len(raw))
		}
	}
	st := c.Stats()
	if st.Oversize != 2 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats = %+v, want 2 oversize, empty cache", st)
	}
}

// TestOversizePlaneUnderConcurrency pins the oversize path's concurrency
// contract: a wave of goroutines missing on a plane bigger than the whole
// budget still coalesces onto one store read, everyone gets the bytes, the
// entry is never inserted (no poisoning — the next wave misses again and
// pays exactly one more read), and the oversize counter counts insert
// attempts, not waiters.
func TestOversizePlaneUnderConcurrency(t *testing.T) {
	c := New(16)
	key := Key{Field: "f", Level: 0, Plane: 0}
	var calls atomic.Int64
	const m, waves = 16, 3
	for wave := 0; wave < waves; wave++ {
		release := make(chan struct{})
		fetch := func() ([]byte, int64, error) {
			calls.Add(1)
			<-release
			return bytes.Repeat([]byte{7}, 64), 32, nil
		}
		var started, done sync.WaitGroup
		started.Add(m)
		done.Add(m)
		errs := make([]error, m)
		for i := 0; i < m; i++ {
			go func(i int) {
				defer done.Done()
				started.Done()
				raw, payload, hit, err := c.GetOrFetch(key, fetch)
				switch {
				case err != nil:
					errs[i] = err
				case hit:
					errs[i] = fmt.Errorf("oversize plane reported as a cache hit")
				case len(raw) != 64 || payload != 32:
					errs[i] = fmt.Errorf("wrong result len=%d payload=%d", len(raw), payload)
				}
			}(i)
		}
		started.Wait()
		close(release)
		done.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("wave %d goroutine %d: %v", wave, i, err)
			}
		}
		if got := calls.Load(); got != int64(wave+1) {
			t.Fatalf("after wave %d the store served %d reads, want %d (one per wave)", wave, got, wave+1)
		}
	}
	st := c.Stats()
	if st.Oversize != waves {
		t.Fatalf("oversize = %d, want %d (one insert attempt per wave)", st.Oversize, waves)
	}
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats = %+v: oversize plane leaked into the cache", st)
	}
	// The budget is still fully available: a plane that fits caches fine.
	small := Key{Field: "f", Level: 0, Plane: 1}
	var smallCalls atomic.Int64
	c.GetOrFetch(small, fetchFor(small, &smallCalls, 8))
	if _, _, hit, _ := c.GetOrFetch(small, fetchFor(small, &smallCalls, 8)); !hit {
		t.Fatal("small plane not cached after oversize churn")
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(0)
	key := Key{Field: "f", Level: 0, Plane: 0}
	boom := errors.New("tier offline")
	fail := true
	fetch := func() ([]byte, int64, error) {
		if fail {
			return nil, 7, boom
		}
		return []byte{9}, 1, nil
	}
	if _, payload, _, err := c.GetOrFetch(key, fetch); !errors.Is(err, boom) || payload != 7 {
		t.Fatalf("failed flight: payload=%d err=%v, want 7/boom", payload, err)
	}
	if c.Len() != 0 {
		t.Fatal("failed fetch left an entry behind")
	}
	fail = false
	raw, _, hit, err := c.GetOrFetch(key, fetch)
	if err != nil || hit || !bytes.Equal(raw, []byte{9}) {
		t.Fatalf("recovery read: raw=%v hit=%v err=%v", raw, hit, err)
	}
}

func TestInvalidateDropsEntry(t *testing.T) {
	c := New(0)
	key := Key{Field: "f", Level: 0, Plane: 0}
	var calls atomic.Int64
	if _, _, _, err := c.GetOrFetch(key, fetchFor(key, &calls, 8)); err != nil {
		t.Fatal(err)
	}
	c.Invalidate(key)
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("Invalidate left state behind")
	}
	if _, _, hit, err := c.GetOrFetch(key, fetchFor(key, &calls, 8)); err != nil || hit {
		t.Fatalf("read after invalidate: hit=%v err=%v, want a fresh miss", hit, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("fetch ran %d times, want 2", calls.Load())
	}
}

// TestInstrumentFoldsExistingCounts mirrors the repo-wide Instrument
// contract: counts accumulated standalone transfer into the registry.
func TestInstrumentFoldsExistingCounts(t *testing.T) {
	c := New(0)
	key := Key{Field: "f", Level: 0, Plane: 0}
	var calls atomic.Int64
	c.GetOrFetch(key, fetchFor(key, &calls, 32))
	c.GetOrFetch(key, fetchFor(key, &calls, 32))
	o := obs.New()
	c.Instrument(o)
	c.GetOrFetch(key, fetchFor(key, &calls, 32))
	snap := o.Metrics.Snapshot()
	if snap.Counters["servecache.hits"] != 2 || snap.Counters["servecache.misses"] != 1 {
		t.Fatalf("registry counters = %v, want hits 2, misses 1", snap.Counters)
	}
	if snap.Gauges["servecache.bytes"] != 32 || snap.Gauges["servecache.entries"] != 1 {
		t.Fatalf("registry gauges = %v, want bytes 32, entries 1", snap.Gauges)
	}
	if snap.Histograms["servecache.fetch_seconds.hit"].Count != 1 {
		t.Fatalf("hit latency histogram count = %d, want 1 (post-Instrument hit)",
			snap.Histograms["servecache.fetch_seconds.hit"].Count)
	}
}
