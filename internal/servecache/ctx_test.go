package servecache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gatedFetch blocks until its gate closes (or ctx ends), then returns the
// payload. It counts calls and remembers whether the flight ctx ended.
type gatedFetch struct {
	gate      chan struct{}
	calls     atomic.Int64
	cancelled atomic.Int64
	raw       []byte
}

func (g *gatedFetch) fetch(ctx context.Context) ([]byte, int64, error) {
	g.calls.Add(1)
	select {
	case <-g.gate:
		return g.raw, int64(len(g.raw)), nil
	case <-ctx.Done():
		g.cancelled.Add(1)
		return nil, 0, ctx.Err()
	}
}

func TestGetOrFetchCtxCancelledWaiterDoesNotPoisonSurvivors(t *testing.T) {
	c := New(0)
	g := &gatedFetch{gate: make(chan struct{}), raw: []byte{1, 2, 3}}
	key := Key{Field: "f", Level: 0, Plane: 0}

	// Leader with a short deadline starts the flight.
	leaderCtx, leaderCancel := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, _, err := c.GetOrFetchCtx(leaderCtx, key, g.fetch)
		leaderDone <- err
	}()
	// Wait until the flight exists so the survivor coalesces onto it.
	waitFor(t, func() bool { return g.calls.Load() == 1 })

	// A survivor with no deadline joins the same flight.
	survivorDone := make(chan struct{})
	var sraw []byte
	var serr error
	go func() {
		defer close(survivorDone)
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		sraw, _, _, serr = c.GetOrFetchCtx(sctx, key, g.fetch)
	}()
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		f, ok := c.flights[key]
		return ok && f.waiters == 2
	})

	// Cancel the leader: it must return promptly with its ctx error while
	// the fetch keeps running for the survivor.
	leaderCancel()
	select {
	case err := <-leaderDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled leader err = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled leader did not return")
	}
	if g.cancelled.Load() != 0 {
		t.Fatal("flight fetch was cancelled while a survivor still waited")
	}

	// Release the fetch; the survivor gets the real plane.
	close(g.gate)
	select {
	case <-survivorDone:
	case <-time.After(5 * time.Second):
		t.Fatal("survivor did not complete after the fetch landed")
	}
	if serr != nil {
		t.Fatalf("survivor err = %v", serr)
	}
	if string(sraw) != string(g.raw) {
		t.Fatalf("survivor got %v, want %v", sraw, g.raw)
	}
	if g.calls.Load() != 1 {
		t.Fatalf("fetch ran %d times, want 1 (singleflight)", g.calls.Load())
	}
	if st := c.Stats(); st.Detached != 1 {
		t.Fatalf("Detached = %d, want 1", st.Detached)
	}
	// The flight's result was cached for later callers.
	if _, _, hit, err := c.GetOrFetch(key, func() ([]byte, int64, error) {
		t.Fatal("fetch re-ran for a cached plane")
		return nil, 0, nil
	}); err != nil || !hit {
		t.Fatalf("follow-up read: hit=%v err=%v, want cached hit", hit, err)
	}
}

func TestGetOrFetchCtxLastWaiterCancelsFlight(t *testing.T) {
	c := New(0)
	g := &gatedFetch{gate: make(chan struct{}), raw: []byte{9}}
	defer close(g.gate)
	key := Key{Field: "f", Level: 1, Plane: 2}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, _, err := c.GetOrFetchCtx(ctx, key, g.fetch)
		done <- err
	}()
	waitFor(t, func() bool { return g.calls.Load() == 1 })
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sole waiter did not return after cancel")
	}
	// With zero waiters left the flight context must be cancelled so the
	// fetch goroutine exits instead of blocking on the gate forever.
	waitFor(t, func() bool { return g.cancelled.Load() == 1 })
	// The failed flight is unregistered, so the next call fetches fresh.
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		_, ok := c.flights[key]
		return !ok
	})
	if _, _, _, err := c.GetOrFetch(key, func() ([]byte, int64, error) {
		return []byte{5}, 1, nil
	}); err != nil {
		t.Fatalf("fresh fetch after abandoned flight: %v", err)
	}
}

func TestGetOrFetchCtxNonCancellableWaiterPinsFlight(t *testing.T) {
	c := New(0)
	g := &gatedFetch{gate: make(chan struct{}), raw: []byte{4, 4}}
	key := Key{Field: "f", Level: 0, Plane: 1}

	leaderCtx, leaderCancel := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c.GetOrFetchCtx(leaderCtx, key, g.fetch)
	}()
	waitFor(t, func() bool { return g.calls.Load() == 1 })

	// A plain GetOrFetch waiter joins; it can never detach.
	var wg sync.WaitGroup
	wg.Add(1)
	var raw []byte
	var err error
	go func() {
		defer wg.Done()
		raw, _, _, err = c.GetOrFetch(key, func() ([]byte, int64, error) {
			t.Error("sync waiter started its own fetch instead of coalescing")
			return nil, 0, nil
		})
	}()
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		f, ok := c.flights[key]
		return ok && f.waiters == 2
	})

	leaderCancel()
	<-leaderDone
	if g.cancelled.Load() != 0 {
		t.Fatal("flight was cancelled despite a pinned synchronous waiter")
	}
	close(g.gate)
	wg.Wait()
	if err != nil || string(raw) != string(g.raw) {
		t.Fatalf("pinned waiter got (%v, %v), want the fetched plane", raw, err)
	}
}

func TestGetOrFetchCtxBackgroundMatchesSync(t *testing.T) {
	c := New(0)
	key := Key{Field: "f", Level: 3, Plane: 0}
	raw, payload, hit, err := c.GetOrFetchCtx(context.Background(), key, func(context.Context) ([]byte, int64, error) {
		return []byte{8, 8}, 7, nil
	})
	if err != nil || hit || payload != 7 || string(raw) != "\x08\x08" {
		t.Fatalf("miss path: raw=%v payload=%d hit=%v err=%v", raw, payload, hit, err)
	}
	raw, payload, hit, err = c.GetOrFetchCtx(context.Background(), key, func(context.Context) ([]byte, int64, error) {
		t.Fatal("fetch re-ran on a hit")
		return nil, 0, nil
	})
	if err != nil || !hit || payload != 7 || string(raw) != "\x08\x08" {
		t.Fatalf("hit path: raw=%v payload=%d hit=%v err=%v", raw, payload, hit, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Detached != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 0 detached", st)
	}
}

func TestGetOrFetchCtxPreCancelledReturnsImmediately(t *testing.T) {
	c := New(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := c.GetOrFetchCtx(ctx, Key{Field: "f"}, func(context.Context) ([]byte, int64, error) {
		t.Fatal("fetch ran under a pre-cancelled context")
		return nil, 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}
