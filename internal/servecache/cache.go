// Package servecache is the shared read-path cache of the serving layer: a
// concurrency-safe, byte-budget LRU over *decompressed* plane bitsets keyed
// by (field, level, plane), with singleflight deduplication so N concurrent
// sessions asking for the same not-yet-materialized plane trigger exactly
// one store read and one lossless decompression.
//
// The paper's core usage pattern (§II-A) is many analysts progressively
// refining the same refactored field. Without sharing, every core.Session
// re-fetches and re-decompresses its own copy of every plane; the cache
// makes the decompression/recomposition pipeline's dominant costs — segment
// I/O and the lossless stage — pay-once across sessions, which is what a
// many-readers-one-store deployment needs.
//
// The cache stores decompressed planes rather than compressed payloads
// because decompression dominates a warm read and the decoded bitsets are
// immutable (bitplane.DecodePartial only reads them), so one copy can back
// any number of concurrent reconstructions. Entries also remember the
// compressed payload size their fetch moved, so per-session byte accounting
// (core.Session.BytesFetched) is identical with the cache on or off.
package servecache

import (
	"container/list"
	"context"
	"sync"
	"time"

	"pmgard/internal/obs"
)

// Key identifies one cached plane. Codec and Field together namespace the
// (level, plane) coordinates — two stores serving different fields (or
// different timesteps of the same field) must use distinct Field strings,
// and the same field refactored by two progressive-codec backends must use
// distinct Codec strings, or they will share entries.
type Key struct {
	// Codec is the progressive-codec backend ID the plane was produced by
	// ("mgard", "interp"). Sessions fill it from the artifact header, so two
	// backends serving the same field name can never collide.
	Codec string
	// Field is the cache namespace, typically "<field>@<timestep>".
	Field string
	// Level is the coefficient level of the plane.
	Level int
	// Plane is the bit-plane index within the level.
	Plane int
}

// Fetch materializes a plane on a cache miss: it returns the decompressed
// plane bitset, the compressed payload bytes the fetch moved off the store,
// and an error. On error the payload count is still meaningful — it is the
// bytes a failed fetch transferred (a corrupt segment that arrived but did
// not decode), which sessions account as wasted.
type Fetch func() (raw []byte, payload int64, err error)

// Source materializes planes on cache misses, like Fetch but without a
// per-call closure: a long-lived fetcher (for example a session's store
// binding) implements FetchPlane once and the cache hit path stays
// allocation-free. The same payload/error contract as Fetch applies.
type Source interface {
	// FetchPlane fetches and decompresses the plane identified by key.
	FetchPlane(key Key) (raw []byte, payload int64, err error)
}

// FetchCtx is Fetch with a context: the cache passes the *flight* context,
// which is cancelled only when every waiter coalesced onto the flight has
// abandoned it — never when one of several waiters times out.
type FetchCtx func(ctx context.Context) (raw []byte, payload int64, err error)

// SourceCtx is Source with a context, with the same flight-context contract
// as FetchCtx.
type SourceCtx interface {
	// FetchPlaneCtx fetches and decompresses the plane identified by key,
	// honoring ctx cancellation.
	FetchPlaneCtx(ctx context.Context, key Key) (raw []byte, payload int64, err error)
}

// entry is one cached plane: the decompressed bitset plus the compressed
// payload size its fetch moved (replayed to every later hit so per-session
// accounting matches the uncached path).
type entry struct {
	key     Key
	raw     []byte
	payload int64
	elem    *list.Element
}

// flight is one in-progress fetch; followers block on done and read the
// leader's result.
type flight struct {
	done    chan struct{}
	raw     []byte
	payload int64
	err     error
	// waiters counts callers whose result depends on this flight, guarded
	// by Cache.mu. A cancelled waiter detaches by decrementing it; when the
	// count reaches zero the flight context is cancelled so no orphaned
	// fetch keeps running. Non-cancellable waiters never detach, pinning
	// the flight to completion.
	waiters int
	// cancel ends the flight context. Nil for flights led by the
	// synchronous (non-context) path, which always run to completion.
	cancel context.CancelFunc
}

// Stats is a point-in-time view over the cache counters, for tests and CLI
// reporting. The counters themselves live in obs instruments (standalone by
// default, registry-backed after Instrument), so the same numbers appear in
// a -metrics-out snapshot and in this struct.
type Stats struct {
	// Hits is the number of GetOrFetch calls served from a cached entry.
	Hits int64
	// Misses is the number of GetOrFetch calls that led a fetch.
	Misses int64
	// Coalesced is the number of GetOrFetch calls that piggybacked on an
	// in-flight fetch instead of issuing their own.
	Coalesced int64
	// Evictions is the number of entries evicted to fit the byte budget.
	Evictions int64
	// Oversize is the number of fetched planes too large to cache at all.
	Oversize int64
	// Detached is the number of GetOrFetchCtx waiters that abandoned an
	// in-flight fetch because their context ended before it landed.
	Detached int64
	// Bytes is the decompressed bytes currently held.
	Bytes int64
	// Entries is the number of planes currently held.
	Entries int64
}

// cacheCounters are the live instruments behind Stats. Standalone zero
// values count exactly even without a registry; Instrument rebinds them to
// shared, registry-named instruments.
type cacheCounters struct {
	hits      *obs.Counter
	misses    *obs.Counter
	coalesced *obs.Counter
	evictions *obs.Counter
	oversize  *obs.Counter
	detached  *obs.Counter
	bytes     *obs.Gauge
	entries   *obs.Gauge
	hitSecs   *obs.Histogram
	missSecs  *obs.Histogram
}

func newCacheCounters() cacheCounters {
	return cacheCounters{
		hits:      new(obs.Counter),
		misses:    new(obs.Counter),
		coalesced: new(obs.Counter),
		evictions: new(obs.Counter),
		oversize:  new(obs.Counter),
		detached:  new(obs.Counter),
		bytes:     new(obs.Gauge),
		entries:   new(obs.Gauge),
		hitSecs:   obs.NewHistogram(obs.LatencyBuckets()),
		missSecs:  obs.NewHistogram(obs.LatencyBuckets()),
	}
}

// Cache is the shared plane cache. It is safe for concurrent use; every
// method may be called from any goroutine. The zero value is not usable;
// call New.
//
// Layering: the cache belongs *above* the storage resilience stack — wrap
// a storage.RetryingSource (or TieredSource, or any fault-injecting
// wrapper) in the Fetch closure, so that retries, backoff and fault
// classification for a contended plane run once for the whole flight
// instead of once per session.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	entries map[Key]*entry
	lru     *list.List // front = most recently used
	flights map[Key]*flight
	c       cacheCounters
}

// New returns a cache bounded to budget decompressed bytes. budget <= 0
// means unbounded (entries are never evicted). The budget counts plane
// bitset bytes only; per-entry bookkeeping overhead is not accounted.
func New(budget int64) *Cache {
	return &Cache{
		budget:  budget,
		entries: make(map[Key]*entry),
		lru:     list.New(),
		flights: make(map[Key]*flight),
		c:       newCacheCounters(),
	}
}

// Instrument rebinds the cache counters to shared instruments in o's
// registry under servecache.*, folding in anything counted so far, so a
// metrics snapshot and Stats() report the same numbers. Call it before the
// cache is shared across goroutines; instrumenting mid-flight races with
// concurrent reads. A nil or metrics-less o is a no-op. Histogram contents
// recorded before the call are not transferred.
func (c *Cache) Instrument(o *obs.Obs) {
	if o == nil || o.Metrics == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	bind := func(dst **obs.Counter, name string) {
		ctr := o.Counter("servecache." + name)
		ctr.Add((*dst).Value())
		*dst = ctr
	}
	bind(&c.c.hits, "hits")
	bind(&c.c.misses, "misses")
	bind(&c.c.coalesced, "coalesced")
	bind(&c.c.evictions, "evictions")
	bind(&c.c.oversize, "oversize")
	bind(&c.c.detached, "detached")
	bindGauge := func(dst **obs.Gauge, name string) {
		g := o.Gauge("servecache." + name)
		g.Add((*dst).Value())
		*dst = g
	}
	bindGauge(&c.c.bytes, "bytes")
	bindGauge(&c.c.entries, "entries")
	c.c.hitSecs = o.Histogram("servecache.fetch_seconds.hit", obs.LatencyBuckets())
	c.c.missSecs = o.Histogram("servecache.fetch_seconds.miss", obs.LatencyBuckets())
}

// GetOrFetch returns the decompressed plane for key, fetching it with fetch
// on a miss. It returns the plane bitset, the compressed payload bytes the
// plane's fetch moved (replayed on hits, so callers account identical bytes
// whether the cache served them or the store did), and whether the call was
// served from an already-cached entry.
//
// Exactly one fetch runs per key at a time: concurrent callers of a
// not-yet-cached key coalesce onto the leader's flight and share its
// result, including its error. Errors are not cached — the next GetOrFetch
// after a failed flight starts a fresh fetch.
//
// The returned bitset is shared: callers must treat it as immutable.
func (c *Cache) GetOrFetch(key Key, fetch Fetch) (raw []byte, payload int64, hit bool, err error) {
	return c.getOrFetch(key, fetch, nil)
}

// GetOrFetchFrom is GetOrFetch with the miss path delegated to a
// long-lived Source instead of a per-call closure, keeping steady-state
// (hit-dominated) traffic allocation-free. Semantics are otherwise
// identical to GetOrFetch, including singleflight coalescing.
func (c *Cache) GetOrFetchFrom(key Key, src Source) (raw []byte, payload int64, hit bool, err error) {
	return c.getOrFetch(key, nil, src)
}

// getOrFetch is the shared body; exactly one of fetch and src is non-nil.
func (c *Cache) getOrFetch(key Key, fetch Fetch, src Source) (raw []byte, payload int64, hit bool, err error) {
	start := time.Now()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		raw, payload = e.raw, e.payload
		c.mu.Unlock()
		c.c.hits.Add(1)
		c.c.hitSecs.Observe(time.Since(start).Seconds())
		return raw, payload, true, nil
	}
	if f, ok := c.flights[key]; ok {
		// Pin the flight: a non-cancellable waiter never detaches, so the
		// fetch is guaranteed to run to completion even if every
		// context-carrying waiter gives up.
		f.waiters++
		c.mu.Unlock()
		c.c.coalesced.Add(1)
		<-f.done
		c.c.missSecs.Observe(time.Since(start).Seconds())
		return f.raw, f.payload, false, f.err
	}
	f := &flight{done: make(chan struct{}), waiters: 1}
	c.flights[key] = f
	c.mu.Unlock()

	c.c.misses.Add(1)
	if fetch != nil {
		f.raw, f.payload, f.err = fetch()
	} else {
		f.raw, f.payload, f.err = src.FetchPlane(key)
	}

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.insertLocked(key, f.raw, f.payload)
	}
	c.mu.Unlock()
	close(f.done)
	c.c.missSecs.Observe(time.Since(start).Seconds())
	return f.raw, f.payload, false, f.err
}

// GetOrFetchCtx is GetOrFetch with cancellation. The semantics on top of
// GetOrFetch:
//
//   - fetch runs under the *flight* context, not the caller's: it is derived
//     via context.WithoutCancel so one waiter's deadline never aborts a fetch
//     other waiters still depend on.
//   - a waiter whose ctx ends before the flight lands detaches and returns
//     ctx's error immediately; the fetch keeps running for the remaining
//     waiters, and its result is still cached.
//   - when the *last* waiter detaches, the flight context is cancelled so no
//     orphaned fetch keeps hitting the store.
//
// A cancelled waiter therefore never poisons concurrent waiters: survivors
// always observe the real fetch result. A ctx that cannot be cancelled
// (ctx.Done() == nil) takes exactly the synchronous GetOrFetch path.
func (c *Cache) GetOrFetchCtx(ctx context.Context, key Key, fetch FetchCtx) (raw []byte, payload int64, hit bool, err error) {
	return c.getOrFetchCtx(ctx, key, fetch)
}

// GetOrFetchFromCtx is GetOrFetchCtx with the miss path delegated to a
// long-lived SourceCtx instead of a per-call closure.
func (c *Cache) GetOrFetchFromCtx(ctx context.Context, key Key, src SourceCtx) (raw []byte, payload int64, hit bool, err error) {
	return c.getOrFetchCtx(ctx, key, func(fctx context.Context) ([]byte, int64, error) {
		return src.FetchPlaneCtx(fctx, key)
	})
}

// getOrFetchCtx is the cancellable body behind the Ctx variants.
func (c *Cache) getOrFetchCtx(ctx context.Context, key Key, fetch FetchCtx) (raw []byte, payload int64, hit bool, err error) {
	if ctx.Done() == nil {
		return c.getOrFetch(key, func() ([]byte, int64, error) { return fetch(ctx) }, nil)
	}
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, 0, false, err
	}
	sp := obs.SpanFromContext(ctx).Child("servecache.get")
	sp.SetAttr("level", key.Level)
	sp.SetAttr("plane", key.Plane)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		raw, payload = e.raw, e.payload
		c.mu.Unlock()
		c.c.hits.Add(1)
		c.c.hitSecs.Observe(time.Since(start).Seconds())
		sp.SetAttr("outcome", "hit")
		sp.SetAttr("bytes", payload)
		sp.End()
		return raw, payload, true, nil
	}
	if f, ok := c.flights[key]; ok {
		f.waiters++
		c.mu.Unlock()
		c.c.coalesced.Add(1)
		sp.SetAttr("outcome", "coalesced")
		return c.awaitFlight(ctx, key, f, start, sp)
	}
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	// The flight's store read nests under the leader's cache span (span
	// values survive WithoutCancel, so the leader detaching cancels the
	// fetch only when it was the last waiter — never the span chain).
	fctx = obs.ContextWithSpan(fctx, sp)
	f := &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
	c.flights[key] = f
	c.mu.Unlock()
	c.c.misses.Add(1)
	sp.SetAttr("outcome", "miss")
	go c.runFlight(fctx, key, f, fetch)
	return c.awaitFlight(ctx, key, f, start, sp)
}

// runFlight executes one asynchronous fetch and completes its flight:
// result recorded, flight unregistered, entry inserted on success, waiters
// released. Runs on its own goroutine so a cancelled leader can return
// without abandoning the flight's followers.
func (c *Cache) runFlight(fctx context.Context, key Key, f *flight, fetch FetchCtx) {
	f.raw, f.payload, f.err = fetch(fctx)
	c.mu.Lock()
	// An abandoned flight was already unregistered by its last waiter, and
	// the key may since host a fresh flight — only remove our own.
	if c.flights[key] == f {
		delete(c.flights, key)
	}
	if f.err == nil {
		c.insertLocked(key, f.raw, f.payload)
	}
	c.mu.Unlock()
	close(f.done)
	f.cancel()
}

// awaitFlight blocks one waiter on a flight until the fetch lands or the
// waiter's ctx ends, detaching (and cancelling the flight when it was the
// last waiter) in the latter case. sp is the waiter's cache span; it ends
// here with the flight's outcome — a cancelled status on detach, so a
// killed waiter's trace shows exactly where it stopped waiting.
func (c *Cache) awaitFlight(ctx context.Context, key Key, f *flight, start time.Time, sp *obs.Span) ([]byte, int64, bool, error) {
	select {
	case <-f.done:
		c.c.missSecs.Observe(time.Since(start).Seconds())
		sp.SetAttr("bytes", f.payload)
		sp.Fail(f.err)
		sp.End()
		return f.raw, f.payload, false, f.err
	case <-ctx.Done():
	}
	c.mu.Lock()
	select {
	case <-f.done:
		// The fetch landed while cancellation was being processed; the
		// result is ready, so take it rather than discard it.
		c.mu.Unlock()
		c.c.missSecs.Observe(time.Since(start).Seconds())
		sp.SetAttr("bytes", f.payload)
		sp.Fail(f.err)
		sp.End()
		return f.raw, f.payload, false, f.err
	default:
	}
	f.waiters--
	last := f.waiters == 0
	if last && c.flights[key] == f {
		// Unregister the doomed flight in the same critical section as the
		// final detach, so a caller arriving after the abandonment never
		// coalesces onto it and inherits a cancellation it did not ask for.
		delete(c.flights, key)
	}
	c.mu.Unlock()
	if last && f.cancel != nil {
		f.cancel()
	}
	c.c.detached.Add(1)
	sp.SetAttr("detached", true)
	sp.Fail(ctx.Err())
	sp.End()
	return nil, 0, false, ctx.Err()
}

// insertLocked adds a fetched plane, evicting least-recently-used entries
// until the budget holds. Planes larger than the whole budget are returned
// to the caller but never cached. c.mu must be held.
func (c *Cache) insertLocked(key Key, raw []byte, payload int64) {
	if _, ok := c.entries[key]; ok {
		// A racing insert for the same key (possible only through Invalidate
		// interleavings) keeps the existing entry.
		return
	}
	size := int64(len(raw))
	if c.budget > 0 && size > c.budget {
		c.c.oversize.Add(1)
		return
	}
	for c.budget > 0 && c.bytes+size > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back.Value.(*entry))
		c.c.evictions.Add(1)
	}
	e := &entry{key: key, raw: raw, payload: payload}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.bytes += size
	c.c.bytes.Set(float64(c.bytes))
	c.c.entries.Set(float64(len(c.entries)))
}

// removeLocked unlinks an entry and updates the byte total. c.mu must be
// held.
func (c *Cache) removeLocked(e *entry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
	c.bytes -= int64(len(e.raw))
	c.c.bytes.Set(float64(c.bytes))
	c.c.entries.Set(float64(len(c.entries)))
}

// Invalidate drops the cached entry for key, if any. In-flight fetches are
// unaffected (their result will still be inserted when they land).
func (c *Cache) Invalidate(key Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.removeLocked(e)
	}
}

// Len returns the number of cached planes.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the decompressed bytes currently held.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Budget returns the configured byte budget (<= 0 means unbounded).
func (c *Cache) Budget() int64 { return c.budget }

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	bytes, entries := c.bytes, int64(len(c.entries))
	c.mu.Unlock()
	return Stats{
		Hits:      c.c.hits.Value(),
		Misses:    c.c.misses.Value(),
		Coalesced: c.c.coalesced.Value(),
		Evictions: c.c.evictions.Value(),
		Oversize:  c.c.oversize.Value(),
		Detached:  c.c.detached.Value(),
		Bytes:     bytes,
		Entries:   entries,
	}
}
