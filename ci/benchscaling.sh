#!/bin/sh
# bench-scaling smoke: on a multi-core runner, the streaming refactor
# pipeline at GOMAXPROCS=2/workers=2 must finish in <= 0.9x the wall clock
# of GOMAXPROCS=1/workers=1 (output bytes are bit-identical either way —
# the golden equivalence tests enforce that; this gates the speedup).
# Single-core hosts can't measure parallelism, so they skip.
set -eu
cd "$(dirname "$0")/.."
cpus=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$cpus" -lt 2 ]; then
    echo "bench-scaling: skip ($cpus CPU online, need >= 2)"
    exit 0
fi
exec go run ./cmd/bench -dims 33,33,33 -parallel-procs 1,2 -parallel-reps 3 -scaling-gate 0.9
