#!/bin/sh
# Coverage gate over the codec stack: the merged statement coverage of
# internal/codec (plus backends and the conformance suite), internal/bitplane,
# and internal/core must not drop below the recorded baseline. The baseline
# lives in ci/coverage_baseline.txt; raise it when coverage genuinely
# improves, never lower it to make a PR pass.
set -eu

cd "$(dirname "$0")/.."
baseline=$(cat ci/coverage_baseline.txt)
profile="${COVERPROFILE:-$(mktemp)}"

go test -coverprofile="$profile" \
	-coverpkg=pmgard/internal/codec/...,pmgard/internal/bitplane,pmgard/internal/core \
	./internal/codec/... ./internal/bitplane/ ./internal/core/

total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')
echo "covergate: total ${total}% (baseline ${baseline}%)"
awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t+0 >= b+0) }' || {
	echo "covergate: coverage ${total}% fell below the recorded baseline ${baseline}%" >&2
	exit 1
}
