// Package pmgard is a Go implementation of the DNN-assisted progressive
// retrieval framework for HPC scientific data from Wang et al., "Improving
// Progressive Retrieval for HPC Scientific Data using Deep Neural Network"
// (ICDE 2023), together with every substrate it depends on: an MGARD-style
// error-bounded multilevel decomposer with nega-binary bit-plane encoding,
// a tiered-storage segment store, a from-scratch DNN stack, and the two
// prediction models the paper proposes (D-MGARD and E-MGARD).
//
// This root package is a thin facade over the internal packages so
// downstream code has one import:
//
//	field := ...                          // *pmgard.Tensor
//	c, _ := pmgard.Compress(field, pmgard.DefaultConfig(), "Jx", 0)
//	h := &c.Header
//	rec, plan, _ := pmgard.RetrieveTolerance(h, c, h.TheoryEstimator(), tol)
//
// See the examples/ directory for complete workflows and DESIGN.md for the
// system inventory and experiment index.
package pmgard

import (
	"context"

	"pmgard/internal/bufpool"
	"pmgard/internal/codec"
	"pmgard/internal/core"
	"pmgard/internal/dataset"
	"pmgard/internal/decompose"
	"pmgard/internal/dmgard"
	"pmgard/internal/emgard"
	"pmgard/internal/features"
	"pmgard/internal/grid"
	"pmgard/internal/obs"
	"pmgard/internal/retrieval"
	"pmgard/internal/servecache"
	"pmgard/internal/storage"
)

// Tensor is a dense N-dimensional float64 field.
type Tensor = grid.Tensor

// NewTensor allocates a zero-filled field with the given dimensions.
func NewTensor(dims ...int) *Tensor { return grid.New(dims...) }

// TensorFromSlice wraps a flat row-major slice as a field without copying.
func TensorFromSlice(data []float64, dims ...int) *Tensor {
	return grid.FromSlice(data, dims...)
}

// Config configures the compression pipeline.
type Config = core.Config

// DecomposeOptions configures the multilevel transform.
type DecomposeOptions = decompose.Options

// DefaultConfig mirrors the paper's setup: five coefficient levels, 32
// nega-binary bit-planes per level, DEFLATE for the lossless stage.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultBackend is the progressive-codec backend used when Config.Backend
// is empty: the MGARD-style multilevel lifting decomposition. Artifacts it
// produces stay byte-identical to pre-codec-interface pmgard output.
const DefaultBackend = codec.DefaultID

// Backends returns the registered progressive-codec backend IDs, sorted.
// Set Config.Backend to one of them to select how a field is refactored:
// "mgard" (lifting decomposition, the default) or "interp" (multilinear
// interpolation residuals, cheap and tight on smooth fields).
func Backends() []string { return codec.IDs() }

// ProbePoint is one tolerance of a backend probe: the smallest measured
// retrieval prefix that reaches the bound, and its cost.
type ProbePoint = core.ProbePoint

// ProbeResult is one backend's measured probe over a field.
type ProbeResult = core.ProbeResult

// ProbeComparison is a per-field backend comparison: which backend
// retrieves the field cheapest across the probed tolerances.
type ProbeComparison = core.ProbeComparison

// ProbeBackends compresses the field under each backend (nil = all
// registered) and measures the smallest retrieval prefix that reaches each
// relative bound (nil = DefaultProbeBounds). The Winner is the backend
// cmd/serve -raw would select for the field.
func ProbeBackends(t *Tensor, cfg Config, fieldName string, relBounds []float64, backends []string) (*ProbeComparison, error) {
	return core.ProbeBackends(t, cfg, fieldName, relBounds, backends)
}

// DefaultProbeBounds returns the relative error bounds a backend probe
// sweeps, loosest first.
func DefaultProbeBounds() []float64 { return core.DefaultProbeBounds() }

// Compressed is an in-memory compressed field.
type Compressed = core.Compressed

// Header is the retained compression metadata.
type Header = core.Header

// Plan is a retrieval decision with its byte cost.
type Plan = retrieval.Plan

// ErrorEstimator maps per-level truncation errors to a reconstruction-error
// estimate; TheoryEstimator and E-MGARD's learned estimator implement it.
type ErrorEstimator = retrieval.ErrorEstimator

// SegmentSource yields compressed plane payloads during retrieval.
type SegmentSource = core.SegmentSource

// StoreSource adapts an opened store file as a SegmentSource.
type StoreSource = core.StoreSource

// Store is a file-backed segment store with I/O accounting.
type Store = storage.Store

// Compress runs decomposition, bit-plane encoding and lossless coding on a
// field.
func Compress(t *Tensor, cfg Config, fieldName string, timestep int) (*Compressed, error) {
	return core.Compress(t, cfg, fieldName, timestep)
}

// OpenFile opens a compressed field file written by Compressed.WriteFile.
func OpenFile(path string) (*Header, *Store, error) { return core.OpenFile(path) }

// Retrieve fetches the planes named by plan and recomposes the field, using
// one worker per CPU.
func Retrieve(h *Header, src SegmentSource, plan Plan) (*Tensor, error) {
	return core.Retrieve(h, src, plan)
}

// RetrieveWorkers is Retrieve with an explicit worker count (≤ 0 means one
// worker per CPU; 1 forces the sequential path). The reconstruction is
// bit-identical for every worker count.
func RetrieveWorkers(h *Header, src SegmentSource, plan Plan, workers int) (*Tensor, error) {
	return core.RetrieveWorkers(h, src, plan, workers)
}

// RetrieveTolerance plans greedily under est at an absolute tolerance and
// retrieves.
func RetrieveTolerance(h *Header, src SegmentSource, est ErrorEstimator, tol float64) (*Tensor, Plan, error) {
	return core.RetrieveTolerance(h, src, est, tol)
}

// RetrievePlanes retrieves a fixed per-level plane assignment (the D-MGARD
// integration point).
func RetrievePlanes(h *Header, src SegmentSource, planes []int) (*Tensor, Plan, error) {
	return core.RetrievePlanes(h, src, planes)
}

// DMGARDModel is the chained multi-output plane-count predictor (§III-C).
type DMGARDModel = dmgard.Model

// DMGARDRecord is one D-MGARD training sample.
type DMGARDRecord = dmgard.Record

// DMGARDConfig holds D-MGARD training hyperparameters.
type DMGARDConfig = dmgard.Config

// TrainDMGARD fits the CMOR chain to harvested records.
func TrainDMGARD(records []DMGARDRecord, planes int, cfg DMGARDConfig) (*DMGARDModel, error) {
	return dmgard.Train(records, planes, cfg)
}

// HarvestDMGARD sweeps the theory pipeline over relative bounds and emits
// D-MGARD training records.
func HarvestDMGARD(field *Tensor, fieldName string, timestep int, cfg Config, relBounds []float64) ([]DMGARDRecord, *Compressed, error) {
	return dmgard.Harvest(field, fieldName, timestep, cfg, relBounds)
}

// EMGARDModel is the learned per-level error-constant model (§III-D).
type EMGARDModel = emgard.Model

// EMGARDSample is one E-MGARD training sample.
type EMGARDSample = emgard.Sample

// EMGARDConfig holds E-MGARD training hyperparameters.
type EMGARDConfig = emgard.Config

// TrainEMGARD fits per-level encoders to harvested samples.
func TrainEMGARD(samples []EMGARDSample, cfg EMGARDConfig) (*EMGARDModel, error) {
	return emgard.Train(samples, cfg)
}

// HarvestEMGARD sweeps the theory pipeline over relative bounds and emits
// E-MGARD training samples.
func HarvestEMGARD(field *Tensor, fieldName string, timestep int, cfg Config, relBounds []float64) ([]EMGARDSample, *Compressed, error) {
	return emgard.Harvest(field, fieldName, timestep, cfg, relBounds)
}

// DefaultRelBounds returns the paper's 81-value relative error-bound sweep.
func DefaultRelBounds() []float64 { return dmgard.DefaultRelBounds() }

// MaxAbsDiff returns the L∞ distance between two fields.
func MaxAbsDiff(a, b *Tensor) float64 { return grid.MaxAbsDiff(a, b) }

// PSNR returns the peak signal-to-noise ratio of reconstruction b against
// original a, in dB.
func PSNR(a, b *Tensor) float64 { return grid.PSNR(a, b) }

// Obs bundles the optional observability facilities — a concurrency-safe
// metrics registry and a bounded span tracer — threaded through the
// pipeline via Config.Obs, TrainConfig fields and the Instrument methods.
// nil (the default everywhere) disables all telemetry and never changes
// any result; see DESIGN.md §8 for the metric names and trace schema.
type Obs = obs.Obs

// NewObs returns an Obs with a fresh metrics registry and tracer.
func NewObs() *Obs { return obs.New() }

// Session is a stateful progressive retrieval that fetches only deltas as
// the tolerance tightens (earlier reads are never wasted). Its Refine
// method fails soft on permanent data loss, returning a Degradation
// report instead of an error.
type Session = core.Session

// NewSession opens a progressive retrieval session over a compressed field.
func NewSession(h *Header, src SegmentSource) (*Session, error) {
	return core.NewSession(h, src)
}

// Degradation reports a degraded-mode refinement: the planes dropped as
// permanently unavailable and the error bound still achieved without them.
type Degradation = core.Degradation

// PlaneCache is a concurrency-safe, byte-budget LRU cache over decompressed
// plane bitsets with singleflight fetch deduplication — the sharing layer
// between concurrent sessions serving the same field.
type PlaneCache = servecache.Cache

// NewPlaneCache returns a cache bounded to budget decompressed bytes
// (budget ≤ 0 means unbounded).
func NewPlaneCache(budget int64) *PlaneCache { return servecache.New(budget) }

// SharedSource binds a SegmentSource to a PlaneCache for NewSharedSession.
type SharedSource = core.SharedSource

// NewSharedSession opens a progressive session whose plane fetches go
// through a shared cache: concurrent sessions deduplicate store reads and
// decompression while keeping per-session Fetched/BytesFetched accounting
// identical to an uncached session's.
func NewSharedSession(h *Header, ss SharedSource) (*Session, error) {
	return core.NewSharedSession(h, ss)
}

// BufferPoolStats is a point-in-time view over the shared buffer-pool
// counters (pooled-buffer hits, fresh allocations, returns) behind the
// pipeline's zero-allocation hot paths.
type BufferPoolStats = bufpool.Stats

// BufferPoolSnapshot returns the current shared buffer-pool counters.
func BufferPoolSnapshot() BufferPoolStats { return bufpool.Snapshot() }

// InstrumentBufferPools rebinds the shared buffer-pool counters into o's
// metrics registry under bufpool.*, so snapshots report pool behavior
// alongside the rest of the pipeline telemetry. The pools are process-wide;
// call once, before heavy traffic.
func InstrumentBufferPools(o *Obs) { bufpool.Instrument(o) }

// RetryPolicy bounds the retry loop of a RetryingSource.
type RetryPolicy = storage.RetryPolicy

// RetryingSource wraps any SegmentSource with per-read timeouts, bounded
// retries with exponential backoff, and quarantine of permanently failed
// planes.
type RetryingSource = storage.RetryingSource

// DefaultRetryPolicy returns the retry policy tuned for the default
// storage hierarchy.
func DefaultRetryPolicy() RetryPolicy { return storage.DefaultRetryPolicy() }

// NewRetryingSource wraps src with the retry/backoff/quarantine protocol.
// ctx bounds every read and backoff sleep; nil means context.Background().
func NewRetryingSource(ctx context.Context, src SegmentSource, pol RetryPolicy) *RetryingSource {
	return storage.NewRetryingSource(ctx, src, pol)
}

// Hierarchy models a tiered HPC storage system.
type Hierarchy = storage.Hierarchy

// DefaultHierarchy places levels across a four-tier NVMe/SSD/HDD/tape model.
func DefaultHierarchy(levels int) (Hierarchy, error) {
	return storage.DefaultHierarchy(levels)
}

// TieredStore reads plane segments from per-tier directories with per-tier
// I/O accounting.
type TieredStore = storage.TieredStore

// TieredSource adapts a TieredStore as a SegmentSource.
type TieredSource = core.TieredSource

// OpenTiered opens a tiered store directory written by Compressed.WriteTiered.
func OpenTiered(dir string) (*Header, *TieredStore, error) {
	return core.OpenTiered(dir)
}

// DatasetWriter builds a multi-field, multi-timestep compressed dataset
// directory with a JSON catalog.
type DatasetWriter = dataset.Writer

// DatasetReader serves progressive retrievals over a dataset directory with
// optional model attachment and collection-wide I/O accounting.
type DatasetReader = dataset.Reader

// CreateDataset starts a new dataset at dir.
func CreateDataset(dir, name string, cfg Config) (*DatasetWriter, error) {
	return dataset.Create(dir, name, cfg)
}

// OpenDataset opens an existing dataset directory.
func OpenDataset(dir string) (*DatasetReader, error) { return dataset.Open(dir) }

// RetrieveResolution fetches only coefficient levels 0..upTo and
// reconstructs on the coarser grid they span — reduced degrees of freedom
// for analyses that can run at lower resolution.
func RetrieveResolution(h *Header, src SegmentSource, planes []int, upTo int) (*Tensor, Plan, error) {
	return core.RetrieveResolution(h, src, planes, upTo)
}

// RetrieveHybrid combines both models (the paper's §IV-E future work):
// a D-MGARD plane prediction seeds the plan, an E-MGARD estimator verifies
// and refines it before fetching.
func RetrieveHybrid(h *Header, src SegmentSource, seedPlanes []int, est ErrorEstimator, tol float64) (*Tensor, Plan, error) {
	return core.RetrieveHybrid(h, src, seedPlanes, est, tol)
}

// CombineFeatures assembles the full D-MGARD input vector: field statistics
// plus the per-level header features.
func CombineFeatures(fieldFeatures []float64, h *Header) []float64 {
	return dmgard.CombineFeatures(fieldFeatures, h)
}

// ExtractFeatures computes the statistical feature vector of a field.
func ExtractFeatures(t *Tensor, timestep int) []float64 {
	return features.Extract(t, timestep)
}

// CompressAll compresses several named fields concurrently (a simulation
// dump's write side). workers ≤ 0 uses GOMAXPROCS.
func CompressAll(fields map[string]*Tensor, cfg Config, timestep int, workers int) (map[string]*Compressed, error) {
	return core.CompressAll(fields, cfg, timestep, workers)
}
