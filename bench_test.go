package pmgard

// Benchmark harness: one testing.B benchmark per paper table/figure
// (DESIGN.md §3) plus micro-benchmarks of the pipeline stages. The figure
// benchmarks run the same experiment code that cmd/bench prints, at the
// harness's smoke scale; run `go run ./cmd/bench -exp all` for the
// full-scale series recorded in EXPERIMENTS.md.

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pmgard/internal/bitplane"
	"pmgard/internal/decompose"
	"pmgard/internal/experiments"
	"pmgard/internal/nn"
	"pmgard/internal/obs"
	"pmgard/internal/retrieval"
	"pmgard/internal/sim/grayscott"
	"pmgard/internal/sim/warpx"
)

// benchParams returns the experiment scale used by the benchmarks: small
// enough that every figure completes in seconds per iteration.
func benchParams() experiments.Params {
	return experiments.Quick()
}

func benchExperiment(b *testing.B, id string) {
	p := benchParams()
	r, ok := experiments.Registry()[id]
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := r.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			if err := t.Fprint(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig1IOCost regenerates Fig. 1 (requested vs theory I/O cost).
func BenchmarkFig1IOCost(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2ErrorGap regenerates Fig. 2 (requested vs achieved error).
func BenchmarkFig2ErrorGap(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3BitplaneSurface regenerates Fig. 3a–d (plane counts vs
// timestep, bound, duration, density).
func BenchmarkFig3BitplaneSurface(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig5Correlation regenerates Fig. 5a–c (plane-count correlation
// matrix and per-level breakdowns).
func BenchmarkFig5Correlation(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig7LevelError regenerates Fig. 7 (per-level error decay).
func BenchmarkFig7LevelError(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig9DMGARDWarpX regenerates Fig. 9 (D-MGARD prediction error on
// WarpX).
func BenchmarkFig9DMGARDWarpX(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10DMGARDGrayScott regenerates Fig. 10 (D-MGARD prediction
// error on Gray-Scott).
func BenchmarkFig10DMGARDGrayScott(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11CrossResolution regenerates Fig. 11 (train low-res, test
// high-res).
func BenchmarkFig11CrossResolution(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12EMGARDError regenerates Fig. 12 (E-MGARD achieved error vs
// PSNR).
func BenchmarkFig12EMGARDError(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13RetrievalSavings regenerates Fig. 13 (retrieval-size
// savings, the headline result).
func BenchmarkFig13RetrievalSavings(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkTable2Datasets regenerates Table II (dataset inventory).
func BenchmarkTable2Datasets(b *testing.B) { benchExperiment(b, "tab2") }

// BenchmarkAblateLoss runs the Huber/MSE/MAE training ablation.
func BenchmarkAblateLoss(b *testing.B) { benchExperiment(b, "ablate-loss") }

// BenchmarkAblateChain runs the CMOR-vs-independent ablation.
func BenchmarkAblateChain(b *testing.B) { benchExperiment(b, "ablate-chain") }

// BenchmarkAblateUpdate runs the transform update-step ablation.
func BenchmarkAblateUpdate(b *testing.B) { benchExperiment(b, "ablate-update") }

// BenchmarkAblateGreedy runs the greedy-vs-level-major ablation.
func BenchmarkAblateGreedy(b *testing.B) { benchExperiment(b, "ablate-greedy") }

// BenchmarkAblateCodec runs the lossless codec ablation.
func BenchmarkAblateCodec(b *testing.B) { benchExperiment(b, "ablate-codec") }

// BenchmarkAblatePool runs the E-MGARD pooled-input size ablation.
func BenchmarkAblatePool(b *testing.B) { benchExperiment(b, "ablate-pool") }

// BenchmarkAblateAugment runs the D-MGARD augmentation ablation.
func BenchmarkAblateAugment(b *testing.B) { benchExperiment(b, "ablate-augment") }

// BenchmarkAblateSession runs the progressive-session ablation.
func BenchmarkAblateSession(b *testing.B) { benchExperiment(b, "ablate-session") }

// BenchmarkAblateConstant runs the error-constant ablation.
func BenchmarkAblateConstant(b *testing.B) { benchExperiment(b, "ablate-constant") }

// BenchmarkAblateEncoding runs the plane-encoding ablation.
func BenchmarkAblateEncoding(b *testing.B) { benchExperiment(b, "ablate-encoding") }

// BenchmarkAblateLevels runs the hierarchy-depth ablation.
func BenchmarkAblateLevels(b *testing.B) { benchExperiment(b, "ablate-levels") }

// BenchmarkExpHybrid runs the combined D+E control extension.
func BenchmarkExpHybrid(b *testing.B) { benchExperiment(b, "exp-hybrid") }

// BenchmarkExpMultiField runs the joint-training extension.
func BenchmarkExpMultiField(b *testing.B) { benchExperiment(b, "exp-multifield") }

// BenchmarkExpBaselines runs the SZ/ZFP one-shot baseline comparison.
func BenchmarkExpBaselines(b *testing.B) { benchExperiment(b, "exp-baselines") }

// --- pipeline-stage micro-benchmarks ---

// BenchmarkCompress measures the full compression pipeline on a 17³ field.
func BenchmarkCompress(b *testing.B) {
	field, err := warpx.DefaultConfig(17, 17, 17).Field("Jx", 5)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	b.SetBytes(int64(8 * field.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(field, cfg, "Jx", 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetrieve measures a mid-tolerance progressive retrieval from
// memory.
func BenchmarkRetrieve(b *testing.B) {
	field, err := warpx.DefaultConfig(17, 17, 17).Field("Jx", 5)
	if err != nil {
		b.Fatal(err)
	}
	c, err := Compress(field, DefaultConfig(), "Jx", 5)
	if err != nil {
		b.Fatal(err)
	}
	h := &c.Header
	tol := h.AbsTolerance(1e-4)
	est := h.TheoryEstimator()
	b.SetBytes(int64(8 * field.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RetrieveTolerance(h, c, est, tol); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecompose measures the multilevel transform alone.
func BenchmarkDecompose(b *testing.B) {
	field, err := warpx.DefaultConfig(33, 33, 33).Field("Ex", 5)
	if err != nil {
		b.Fatal(err)
	}
	opt := decompose.DefaultOptions()
	b.SetBytes(int64(8 * field.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decompose.Decompose(field, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBitplaneEncode measures nega-binary plane encoding with error
// matrix collection.
func BenchmarkBitplaneEncode(b *testing.B) {
	coeffs := make([]float64, 32768)
	for i := range coeffs {
		coeffs[i] = float64(i%211) - 105
	}
	b.SetBytes(int64(8 * len(coeffs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bitplane.EncodeLevel(coeffs, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// --- parallel-pipeline benchmarks (worker-count sweep) ---

// benchWorkerCounts is the sweep recorded in BENCH_parallel.json.
var benchWorkerCounts = []int{1, 2, 4, 8}

// BenchmarkRefactor measures the full write path (decompose + bit-plane
// encode + lossless) on a 33³ field across worker counts. The output bytes
// are identical at every count; only the wall clock moves.
//
// When PMGARD_METRICS_OUT names a file, the benchmark runs with metrics
// enabled and writes the registry snapshot there on completion — CI's
// metrics-smoke step validates it with cmd/obscheck. Timings from such a
// run include the (small) instrumentation cost; leave the variable unset
// when measuring.
func BenchmarkRefactor(b *testing.B) {
	field, err := warpx.DefaultConfig(33, 33, 33).Field("Jx", 5)
	if err != nil {
		b.Fatal(err)
	}
	var o *obs.Obs
	if path := os.Getenv("PMGARD_METRICS_OUT"); path != "" {
		o = obs.New()
		b.Cleanup(func() {
			if err := o.Metrics.WriteFile(path); err != nil {
				b.Fatal(err)
			}
		})
	}
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Parallelism = workers
			cfg.Obs = o
			b.SetBytes(int64(8 * field.Len()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Compress(field, cfg, "Jx", 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRetrieveParallel measures the read path (fetch + decompress +
// decode + recompose) from memory across worker counts.
func BenchmarkRetrieveParallel(b *testing.B) {
	field, err := warpx.DefaultConfig(33, 33, 33).Field("Jx", 5)
	if err != nil {
		b.Fatal(err)
	}
	c, err := Compress(field, DefaultConfig(), "Jx", 5)
	if err != nil {
		b.Fatal(err)
	}
	h := &c.Header
	plan, err := retrieval.GreedyPlan(h.LevelInfos(), h.TheoryEstimator(), h.AbsTolerance(1e-5))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(8 * field.Len()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RetrieveWorkers(h, c, plan, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrainParallel measures data-parallel minibatch training across
// worker counts (workers=1 is the classic sequential trainer).
func BenchmarkTrainParallel(b *testing.B) {
	x := nn.NewMat(2048, 16)
	y := nn.NewMat(2048, 1)
	for i := range x.Data {
		x.Data[i] = float64(i%17) / 17
	}
	for i := range y.Data {
		y.Data[i] = float64(i % 33)
	}
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := nn.TrainConfig{
				Epochs: 1, BatchSize: 512, Seed: 1,
				Loss: nn.Huber{Delta: 1}, Optimizer: nn.NewAdam(1e-3),
				Workers: workers,
			}
			model := nn.MLP(16, []int{64, 64, 64, 64}, 1, 0.01, rand.New(rand.NewSource(1)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nn.Train(model, x, y, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSessionShared compares two concurrent sessions refining the same
// field to the same tolerance with and without the shared plane cache — the
// multi-session serving scenario recorded in BENCH_cache.json. The shared
// variant reuses one warm cache across iterations, so it measures the
// steady-state serving cost (decode + recompose only); the independent
// variant pays store reads and decompression in both sessions every time.
func BenchmarkSessionShared(b *testing.B) {
	field, err := warpx.DefaultConfig(33, 33, 33).Field("Jx", 5)
	if err != nil {
		b.Fatal(err)
	}
	c, err := Compress(field, DefaultConfig(), "Jx", 5)
	if err != nil {
		b.Fatal(err)
	}
	// Serve from a store file, as cmd/serve does: the independent variant
	// pays store reads + decompression in both sessions, the shared variant
	// hits the warm cache.
	path := filepath.Join(b.TempDir(), "jx.pmgd")
	if err := c.WriteFile(path); err != nil {
		b.Fatal(err)
	}
	h, st, err := OpenFile(path)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	src := StoreSource{Store: st}
	est := h.TheoryEstimator()
	tol := h.AbsTolerance(1e-6)

	refinePair := func(b *testing.B, open func() (*Session, error)) {
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				s, err := open()
				if err != nil {
					errs[i] = err
					return
				}
				_, _, _, errs[i] = s.Refine(est, tol)
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("independent", func(b *testing.B) {
		b.SetBytes(int64(2 * 8 * field.Len()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			refinePair(b, func() (*Session, error) { return NewSession(h, src) })
		}
	})
	b.Run("shared", func(b *testing.B) {
		cache := NewPlaneCache(0)
		// Warm pass outside the timer: steady-state serving hits the cache.
		refinePair(b, func() (*Session, error) {
			return NewSharedSession(h, SharedSource{Src: src, Cache: cache})
		})
		b.SetBytes(int64(2 * 8 * field.Len()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			refinePair(b, func() (*Session, error) {
				return NewSharedSession(h, SharedSource{Src: src, Cache: cache})
			})
		}
	})
}

// BenchmarkGreedyPlan measures the planner on a realistic 5-level header.
func BenchmarkGreedyPlan(b *testing.B) {
	field, err := warpx.DefaultConfig(17, 17, 17).Field("Jx", 5)
	if err != nil {
		b.Fatal(err)
	}
	c, err := Compress(field, DefaultConfig(), "Jx", 5)
	if err != nil {
		b.Fatal(err)
	}
	infos := c.Header.LevelInfos()
	est := c.Header.TheoryEstimator()
	tol := c.Header.AbsTolerance(1e-5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := retrieval.GreedyPlan(infos, est, tol); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGrayScottStep measures one output step of the 3-D simulator.
func BenchmarkGrayScottStep(b *testing.B) {
	sim, err := grayscott.New(grayscott.DefaultConfig(32))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * 32 * 32 * 32))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// BenchmarkMLPTrainEpoch measures one epoch of MLP training at the
// D-MGARD scale.
func BenchmarkMLPTrainEpoch(b *testing.B) {
	cfg := nn.TrainConfig{
		Epochs: 1, BatchSize: 64, Seed: 1,
		Loss: nn.Huber{Delta: 1}, Optimizer: nn.NewAdam(1e-3),
	}
	x := nn.NewMat(1024, 16)
	y := nn.NewMat(1024, 1)
	for i := range x.Data {
		x.Data[i] = float64(i%17) / 17
	}
	for i := range y.Data {
		y.Data[i] = float64(i % 33)
	}
	rngModel := nn.MLP(16, []int{32, 32, 32, 32, 32, 32}, 1, 0.01, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nn.Train(rngModel, x, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
