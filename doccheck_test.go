package pmgard

// Documentation-coverage gate: every exported identifier in the library
// packages must carry a doc comment. This keeps the public surface (and the
// internal packages that examples and downstream forks read) documented as
// the code evolves.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAllExportedIdentifiersDocumented(t *testing.T) {
	var undocumented []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "examples" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		if file.Name.Name == "main" {
			return nil // command entry points are documented at package level
		}
		for _, decl := range file.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				if dd.Name.IsExported() && dd.Doc.Text() == "" {
					undocumented = append(undocumented,
						path+": func "+dd.Name.Name)
				}
			case *ast.GenDecl:
				groupDoc := dd.Doc.Text()
				for _, spec := range dd.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && groupDoc == "" && sp.Doc.Text() == "" && sp.Comment.Text() == "" {
							undocumented = append(undocumented,
								path+": type "+sp.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range sp.Names {
							if n.IsExported() && groupDoc == "" && sp.Doc.Text() == "" && sp.Comment.Text() == "" {
								undocumented = append(undocumented,
									path+": "+n.Name)
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(undocumented) > 0 {
		t.Fatalf("%d exported identifiers lack doc comments:\n  %s",
			len(undocumented), strings.Join(undocumented, "\n  "))
	}
}
