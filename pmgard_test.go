package pmgard

import (
	"path/filepath"
	"testing"

	"pmgard/internal/sim/warpx"
)

// facadeField generates a small WarpX field through the public API types.
func facadeField(t *testing.T) *Tensor {
	t.Helper()
	f, err := warpx.DefaultConfig(17, 9, 9).Field("Ex", 10)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFacadeCompressRetrieve(t *testing.T) {
	field := facadeField(t)
	c, err := Compress(field, DefaultConfig(), "Ex", 10)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	tol := h.AbsTolerance(1e-4)
	rec, plan, err := RetrieveTolerance(h, c, h.TheoryEstimator(), tol)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(field, rec) > tol {
		t.Fatal("tolerance violated through the facade")
	}
	if plan.Bytes <= 0 || plan.Bytes > h.TotalBytes() {
		t.Fatalf("plan bytes %d out of range", plan.Bytes)
	}
	if PSNR(field, rec) < 20 {
		t.Fatalf("PSNR %v unexpectedly low", PSNR(field, rec))
	}
}

func TestFacadeFileWorkflow(t *testing.T) {
	field := facadeField(t)
	c, err := Compress(field, DefaultConfig(), "Ex", 10)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ex.pmgd")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	h, st, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rec, _, err := RetrievePlanes(h, StoreSource{Store: st}, []int{8, 8, 8, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != field.Len() {
		t.Fatal("reconstruction size mismatch")
	}
	if st.BytesRead() == 0 {
		t.Fatal("no bytes accounted")
	}
}

func TestFacadeModelTraining(t *testing.T) {
	field := facadeField(t)
	bounds := []float64{1e-6, 1e-4, 1e-2, 1e-1}
	recs, c, err := HarvestDMGARD(field, "Ex", 10, DefaultConfig(), bounds)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := TrainDMGARD(recs, c.Header.Planes, DMGARDConfig{
		Hidden: []int{8}, LeakyAlpha: 0.01, Epochs: 5, BatchSize: 4, LR: 1e-3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	planes, err := dm.Predict(recs[0].Features, recs[0].AchievedErr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RetrievePlanes(&c.Header, c, planes); err != nil {
		t.Fatal(err)
	}

	samples, _, err := HarvestEMGARD(field, "Ex", 10, DefaultConfig(), bounds)
	if err != nil {
		t.Fatal(err)
	}
	em, err := TrainEMGARD(samples, EMGARDConfig{
		Hidden: []int{8}, Epochs: 5, BatchSize: 4, LR: 1e-3, Seed: 1, Margin: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := em.Estimator(c.Header.LevelPools)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RetrieveTolerance(&c.Header, c, est, c.Header.AbsTolerance(1e-3)); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultRelBoundsExported(t *testing.T) {
	if got := len(DefaultRelBounds()); got != 81 {
		t.Fatalf("DefaultRelBounds has %d entries, want 81", got)
	}
}

func TestTensorConstructors(t *testing.T) {
	a := NewTensor(2, 3)
	if a.Len() != 6 {
		t.Fatal("NewTensor size")
	}
	b := TensorFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if b.At(1, 1) != 4 {
		t.Fatal("TensorFromSlice layout")
	}
}

func TestFacadeSessionAndTiered(t *testing.T) {
	field := facadeField(t)
	c, err := Compress(field, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	s, err := NewSession(h, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Refine(h.TheoryEstimator(), h.AbsTolerance(1e-2)); err != nil {
		t.Fatal(err)
	}
	hier, err := DefaultHierarchy(len(h.Levels))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "tiered")
	if err := c.WriteTiered(dir, hier); err != nil {
		t.Fatal(err)
	}
	h2, st, err := OpenTiered(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, _, err := RetrieveTolerance(h2, TieredSource{Store: st}, h2.TheoryEstimator(), h2.AbsTolerance(1e-3)); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDataset(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	w, err := CreateDataset(dir, "demo", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	field := facadeField(t)
	if err := w.Add(field, "Ex", 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rec, plan, err := r.Retrieve("Ex", 0, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(field, rec) > 1e-3*field.Range() {
		t.Fatal("dataset retrieval violated tolerance")
	}
	if plan.Bytes <= 0 {
		t.Fatal("no bytes planned")
	}
}
