// Command train performs the offline training stage of the DNN-based
// progressive retrieval framework: it sweeps compression experiments over
// field files, harvests training records, and fits either the D-MGARD
// plane-count predictor or the E-MGARD error-constant model.
//
// Usage:
//
//	train -mode dmgard -fields 'data/warpx_Jx_*.field' -out dmgard.gob
//	train -mode emgard -fields 'data/warpx_Jx_*.field' -out emgard.gob
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"pmgard/internal/core"
	"pmgard/internal/dmgard"
	"pmgard/internal/emgard"
	"pmgard/internal/fieldio"
	"pmgard/internal/obs"
)

func main() {
	var (
		mode    = flag.String("mode", "dmgard", "model to train: dmgard or emgard")
		fields  = flag.String("fields", "", "glob of input field files")
		out     = flag.String("out", "", "output model file")
		epochs  = flag.Int("epochs", 0, "training epochs (0 = model default)")
		lr      = flag.Float64("lr", 0, "learning rate (0 = model default)")
		seed    = flag.Int64("seed", 1, "training seed")
		quiet   = flag.Bool("q", false, "suppress per-file progress")
		boundsN = flag.Int("bounds", 81, "number of relative error bounds in the sweep (≤81)")
	)
	var of obs.Flags
	of.Register(flag.CommandLine)
	flag.Parse()
	o, err := of.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
	if err := run(*mode, *fields, *out, *epochs, *lr, *seed, *quiet, *boundsN, o); err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
	if err := of.Finish(o); err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
}

func run(mode, fieldsGlob, out string, epochs int, lr float64, seed int64, quiet bool, boundsN int, o *obs.Obs) error {
	if fieldsGlob == "" || out == "" {
		return fmt.Errorf("-fields and -out are required")
	}
	paths, err := filepath.Glob(fieldsGlob)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no files match %q", fieldsGlob)
	}
	sort.Strings(paths)
	bounds := dmgard.DefaultRelBounds()
	if boundsN > 0 && boundsN < len(bounds) {
		thinned := make([]float64, 0, boundsN)
		for i := 0; i < boundsN; i++ {
			thinned = append(thinned, bounds[i*(len(bounds)-1)/(boundsN-1)])
		}
		bounds = thinned
	}
	cfg := core.DefaultConfig()
	cfg.Obs = o // the harvest sweeps compress through the same pipeline

	switch mode {
	case "dmgard":
		var records []dmgard.Record
		for _, p := range paths {
			meta, field, err := fieldio.Read(p)
			if err != nil {
				return err
			}
			recs, _, err := dmgard.Harvest(field, meta.Field, meta.Timestep, cfg, bounds)
			if err != nil {
				return fmt.Errorf("%s: %w", p, err)
			}
			records = append(records, recs...)
			if !quiet {
				fmt.Printf("harvested %s: %d records (total %d)\n", p, len(recs), len(records))
			}
		}
		tc := dmgard.DefaultConfig()
		tc.Seed = seed
		tc.Obs = o
		if epochs > 0 {
			tc.Epochs = epochs
		}
		if lr > 0 {
			tc.LR = lr
		}
		fmt.Printf("training D-MGARD on %d records (%d epochs, lr %g)...\n", len(records), tc.Epochs, tc.LR)
		m, err := dmgard.Train(records, cfg.Planes, tc)
		if err != nil {
			return err
		}
		if err := m.Save(out); err != nil {
			return err
		}
		fmt.Printf("saved D-MGARD model (%d levels) to %s\n", m.Levels(), out)
	case "emgard":
		var samples []emgard.Sample
		for _, p := range paths {
			meta, field, err := fieldio.Read(p)
			if err != nil {
				return err
			}
			ss, _, err := emgard.Harvest(field, meta.Field, meta.Timestep, cfg, bounds)
			if err != nil {
				return fmt.Errorf("%s: %w", p, err)
			}
			samples = append(samples, ss...)
			if !quiet {
				fmt.Printf("harvested %s: %d samples (total %d)\n", p, len(ss), len(samples))
			}
		}
		tc := emgard.DefaultConfig()
		tc.Seed = seed
		tc.Obs = o
		if epochs > 0 {
			tc.Epochs = epochs
		}
		if lr > 0 {
			tc.LR = lr
		}
		fmt.Printf("training E-MGARD on %d samples (%d epochs, lr %g)...\n", len(samples), tc.Epochs, tc.LR)
		m, err := emgard.Train(samples, tc)
		if err != nil {
			return err
		}
		if err := m.Save(out); err != nil {
			return err
		}
		fmt.Printf("saved E-MGARD model (%d levels) to %s\n", m.Levels(), out)
	default:
		return fmt.Errorf("unknown mode %q (have dmgard, emgard)", mode)
	}
	return nil
}
