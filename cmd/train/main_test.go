package main

import (
	"path/filepath"
	"testing"

	"pmgard/internal/dmgard"
	"pmgard/internal/emgard"
	"pmgard/internal/fieldio"
	"pmgard/internal/sim/warpx"
)

func writeFields(t *testing.T, dir string, steps int) string {
	t.Helper()
	cfg := warpx.DefaultConfig(9, 9, 9)
	for ts := 0; ts < steps; ts++ {
		f, err := cfg.Field("Jx", ts)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, filepathBase(ts))
		if err := fieldio.Write(path, fieldio.Meta{Field: "Jx", Timestep: ts}, f); err != nil {
			t.Fatal(err)
		}
	}
	return filepath.Join(dir, "warpx_Jx_t*.field")
}

func filepathBase(ts int) string {
	return "warpx_Jx_t000" + string(rune('0'+ts)) + ".field"
}

func TestTrainDMGARDFromFiles(t *testing.T) {
	dir := t.TempDir()
	glob := writeFields(t, dir, 3)
	out := filepath.Join(dir, "d.gob")
	if err := run("dmgard", glob, out, 5, 5e-3, 1, true, 6, nil); err != nil {
		t.Fatal(err)
	}
	m, err := dmgard.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if m.Levels() != 5 {
		t.Fatalf("model has %d levels", m.Levels())
	}
}

func TestTrainEMGARDFromFiles(t *testing.T) {
	dir := t.TempDir()
	glob := writeFields(t, dir, 3)
	out := filepath.Join(dir, "e.gob")
	if err := run("emgard", glob, out, 5, 5e-3, 1, true, 6, nil); err != nil {
		t.Fatal(err)
	}
	m, err := emgard.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if m.Levels() != 5 {
		t.Fatalf("model has %d levels", m.Levels())
	}
}

func TestTrainValidation(t *testing.T) {
	if err := run("dmgard", "", "out.gob", 1, 0, 1, true, 5, nil); err == nil {
		t.Error("empty glob accepted")
	}
	if err := run("dmgard", "/nonexistent/*.field", "out.gob", 1, 0, 1, true, 5, nil); err == nil {
		t.Error("matchless glob accepted")
	}
	dir := t.TempDir()
	glob := writeFields(t, dir, 1)
	if err := run("nope", glob, filepath.Join(dir, "x.gob"), 1, 0, 1, true, 5, nil); err == nil {
		t.Error("unknown mode accepted")
	}
}
