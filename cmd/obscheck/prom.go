package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// promDoc is a parsed Prometheus text exposition: the declared metric
// types plus the samples grouped by metric, enough to validate that the
// document is well-formed and that required metrics exist and moved.
type promDoc struct {
	// types maps metric name -> counter|gauge|histogram|summary|untyped.
	types map[string]string
	// values maps a plain (counter/gauge) sample name to its value.
	values map[string]float64
	// histCount maps histogram name -> its _count value.
	histCount map[string]float64
	// histBuckets maps histogram name -> cumulative bucket values in
	// document order.
	histBuckets map[string][]promBucket
}

type promBucket struct {
	le  string
	cum float64
}

// has reports whether the document declares or samples a metric name.
func (d *promDoc) has(name string) bool {
	if _, ok := d.types[name]; ok {
		return true
	}
	if _, ok := d.values[name]; ok {
		return true
	}
	_, ok := d.histCount[name]
	return ok
}

// names returns every metric name in the document, sorted, with its type.
func (d *promDoc) names() []string {
	out := make([]string, 0, len(d.types))
	for name := range d.types {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// parsePromText parses and validates a Prometheus text exposition. It is a
// format checker, not a full scrape client: it enforces the line grammar
// (TYPE comments, `name[{labels}] value [# exemplar]` samples), sample
// values that parse as floats, histogram series that trace back to a
// declared histogram, cumulative bucket monotonicity, and +Inf bucket ==
// _count agreement.
func parsePromText(data string) (*promDoc, error) {
	doc := &promDoc{
		types:       make(map[string]string),
		values:      make(map[string]float64),
		histCount:   make(map[string]float64),
		histBuckets: make(map[string][]promBucket),
	}
	for ln, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			// Only TYPE comments carry structure; HELP and free comments pass.
			if len(fields) >= 4 && fields[1] == "TYPE" {
				name, kind := fields[2], fields[3]
				if !validPromName(name) {
					return nil, fmt.Errorf("line %d: bad metric name %q in TYPE", ln+1, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", ln+1, kind)
				}
				if _, dup := doc.types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", ln+1, name)
				}
				doc.types[name] = kind
			}
			continue
		}
		if err := doc.addSample(line, ln+1); err != nil {
			return nil, err
		}
	}
	for name, buckets := range doc.histBuckets {
		if err := checkBuckets(name, buckets, doc.histCount); err != nil {
			return nil, err
		}
	}
	return doc, nil
}

// addSample parses one sample line into the document.
func (d *promDoc) addSample(line string, ln int) error {
	// OpenMetrics exemplars trail the value after " # ".
	if ix := strings.Index(line, " # "); ix >= 0 {
		line = strings.TrimSpace(line[:ix])
	}
	name := line
	labels := ""
	rest := ""
	if ix := strings.IndexByte(line, '{'); ix >= 0 {
		end := strings.IndexByte(line, '}')
		if end < ix {
			return fmt.Errorf("line %d: unterminated label set", ln)
		}
		name, labels, rest = line[:ix], line[ix+1:end], line[end+1:]
	} else if ix := strings.IndexByte(line, ' '); ix >= 0 {
		name, rest = line[:ix], line[ix:]
	} else {
		return fmt.Errorf("line %d: sample has no value: %q", ln, line)
	}
	if !validPromName(name) {
		return fmt.Errorf("line %d: bad metric name %q", ln, name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return fmt.Errorf("line %d: sample %s has no value", ln, name)
	}
	// A second field would be a timestamp (legal, integer); more is not.
	if len(fields) > 2 {
		return fmt.Errorf("line %d: sample %s has %d trailing fields, want value [timestamp]", ln, name, len(fields))
	}
	value, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return fmt.Errorf("line %d: sample %s value %q: %v", ln, name, fields[0], err)
	}

	if base, ok := strings.CutSuffix(name, "_bucket"); ok && d.types[base] == "histogram" {
		le := labelValue(labels, "le")
		if le == "" {
			return fmt.Errorf("line %d: histogram bucket %s lacks an le label", ln, name)
		}
		d.histBuckets[base] = append(d.histBuckets[base], promBucket{le: le, cum: value})
		return nil
	}
	if base, ok := strings.CutSuffix(name, "_sum"); ok && d.types[base] == "histogram" {
		return nil // sums can be any float; nothing further to check
	}
	if base, ok := strings.CutSuffix(name, "_count"); ok && d.types[base] == "histogram" {
		d.histCount[base] = value
		return nil
	}
	if d.types[name] == "" {
		return fmt.Errorf("line %d: sample %s has no TYPE declaration", ln, name)
	}
	d.values[name] = value
	return nil
}

// checkBuckets validates one histogram's bucket series: cumulative counts
// never decrease, the series ends with le="+Inf", and the +Inf bucket
// agrees with the _count sample.
func checkBuckets(name string, buckets []promBucket, counts map[string]float64) error {
	var prev float64
	hasInf := false
	for _, b := range buckets {
		if b.cum < prev {
			return fmt.Errorf("histogram %s: bucket le=%q count %g below previous %g (not cumulative)", name, b.le, b.cum, prev)
		}
		prev = b.cum
		if b.le == "+Inf" {
			hasInf = true
			if total, ok := counts[name]; ok && total != b.cum {
				return fmt.Errorf("histogram %s: +Inf bucket %g != _count %g", name, b.cum, total)
			}
		}
	}
	if !hasInf {
		return fmt.Errorf("histogram %s: no le=\"+Inf\" bucket", name)
	}
	if _, ok := counts[name]; !ok {
		return fmt.Errorf("histogram %s: no _count sample", name)
	}
	return nil
}

// labelValue extracts one label's (unquoted) value from a label body like
// `le="0.25",job="x"`.
func labelValue(labels, key string) string {
	for _, pair := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || k != key {
			continue
		}
		return strings.Trim(v, `"`)
	}
	return ""
}

// validPromName reports whether name fits the Prometheus metric name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
