// Command obscheck validates a metrics snapshot written by -metrics-out
// (or the PMGARD_METRICS_OUT benchmark hook): it checks the file parses
// and that every required metric name is present in one of the three
// instrument kinds. CI uses it to fail the build when instrumentation
// regresses out of the pipeline.
//
// Usage:
//
//	obscheck -in metrics.json -require core.fetch.bytes,pool.fetch.completed
//
// Exits 0 when every required name is present, 1 otherwise (listing the
// missing names on stderr), 2 on usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pmgard/internal/obs"
)

func main() {
	in := flag.String("in", "", "metrics snapshot JSON file to validate")
	require := flag.String("require", "", "comma-separated metric names that must be present")
	list := flag.Bool("list", false, "print every metric name in the snapshot")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "obscheck: -in is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(2)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", *in, err)
		os.Exit(2)
	}
	if *list {
		for name := range snap.Counters {
			fmt.Printf("counter   %s\n", name)
		}
		for name := range snap.Gauges {
			fmt.Printf("gauge     %s\n", name)
		}
		for name := range snap.Histograms {
			fmt.Printf("histogram %s\n", name)
		}
	}
	var missing []string
	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !snap.Has(name) {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "obscheck: %s is missing %d required metrics:\n", *in, len(missing))
		for _, name := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", name)
		}
		os.Exit(1)
	}
	fmt.Printf("obscheck: %s ok (%d counters, %d gauges, %d histograms)\n",
		*in, len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
}
