// Command obscheck validates a metrics snapshot written by -metrics-out
// (or the PMGARD_METRICS_OUT benchmark hook): it checks the file parses
// and that every required metric name is present in one of the three
// instrument kinds. CI uses it to fail the build when instrumentation
// regresses out of the pipeline.
//
// Usage:
//
//	obscheck -in metrics.json -require core.fetch.bytes,pool.fetch.completed
//	obscheck -in metrics.json -nonzero servecache.hits
//	obscheck -in metrics.prom -format prom -require serve.refine_seconds
//
// -require checks presence; -nonzero additionally checks the named
// counters are present and moved above zero (the CI serve smoke uses it to
// prove the shared cache actually served hits). Exits 0 when every check
// passes, 1 otherwise (listing the failures on stderr), 2 on usage or
// parse errors.
//
// -format prom validates a Prometheus text exposition instead (the
// /metrics?format=prom output): the line grammar, histogram bucket
// monotonicity and +Inf/_count agreement are checked, and -require /
// -nonzero names are matched after the registry's dot-to-underscore
// sanitization, so the same dotted names work in both modes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pmgard/internal/obs"
)

func main() {
	in := flag.String("in", "", "metrics snapshot JSON file to validate")
	format := flag.String("format", "json", "snapshot format: json (registry snapshot) or prom (Prometheus text exposition)")
	require := flag.String("require", "", "comma-separated metric names that must be present")
	nonzero := flag.String("nonzero", "", "comma-separated counter names that must be present and > 0")
	list := flag.Bool("list", false, "print every metric name in the snapshot")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "obscheck: -in is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(2)
	}
	switch *format {
	case "json":
	case "prom":
		os.Exit(runProm(*in, string(data), *require, *nonzero, *list))
	default:
		fmt.Fprintf(os.Stderr, "obscheck: unknown -format %q (want json or prom)\n", *format)
		os.Exit(2)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", *in, err)
		os.Exit(2)
	}
	if *list {
		for name := range snap.Counters {
			fmt.Printf("counter   %s\n", name)
		}
		for name := range snap.Gauges {
			fmt.Printf("gauge     %s\n", name)
		}
		for name := range snap.Histograms {
			fmt.Printf("histogram %s\n", name)
		}
	}
	var missing []string
	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !snap.Has(name) {
			missing = append(missing, name)
		}
	}
	for _, name := range strings.Split(*nonzero, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if v, ok := snap.Counters[name]; !ok || v <= 0 {
			missing = append(missing, fmt.Sprintf("%s (counter, must be > 0; have %d)", name, v))
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "obscheck: %s is missing %d required metrics:\n", *in, len(missing))
		for _, name := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", name)
		}
		os.Exit(1)
	}
	fmt.Printf("obscheck: %s ok (%d counters, %d gauges, %d histograms)\n",
		*in, len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
}

// runProm validates a Prometheus text exposition and returns the process
// exit code. Required names are matched after obs.PromName sanitization, so
// the caller can pass the same dotted registry names as in json mode.
func runProm(path, data, require, nonzero string, list bool) int {
	doc, err := parsePromText(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", path, err)
		return 2
	}
	if list {
		for _, name := range doc.names() {
			fmt.Printf("%-9s %s\n", doc.types[name], name)
		}
	}
	var missing []string
	for _, name := range splitNames(require) {
		if !doc.has(obs.PromName(name)) {
			missing = append(missing, name)
		}
	}
	for _, name := range splitNames(nonzero) {
		pn := obs.PromName(name)
		if v, ok := doc.values[pn]; !ok || doc.types[pn] != "counter" || v <= 0 {
			missing = append(missing, fmt.Sprintf("%s (counter, must be > 0; have %g)", name, v))
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "obscheck: %s is missing %d required metrics:\n", path, len(missing))
		for _, name := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", name)
		}
		return 1
	}
	fmt.Printf("obscheck: %s ok (%d metrics, %d histograms)\n", path, len(doc.types), len(doc.histBuckets))
	return 0
}

// splitNames splits a comma-separated flag value, dropping empties.
func splitNames(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}
