package main

import (
	"strings"
	"testing"
)

const validPromDoc = `# HELP serve_refines Total refines served.
# TYPE serve_refines counter
serve_refines 7
# TYPE servecache_bytes gauge
servecache_bytes 1234.5
# TYPE serve_refine_seconds histogram
serve_refine_seconds_bucket{le="0.1"} 1
serve_refine_seconds_bucket{le="1"} 2 # {trace_id="deadbeefdeadbeefdeadbeefdeadbeef"} 0.5
serve_refine_seconds_bucket{le="+Inf"} 3
serve_refine_seconds_sum 5.55
serve_refine_seconds_count 3
`

func TestParsePromTextValid(t *testing.T) {
	doc, err := parsePromText(validPromDoc)
	if err != nil {
		t.Fatal(err)
	}
	if doc.types["serve_refines"] != "counter" || doc.values["serve_refines"] != 7 {
		t.Fatalf("counter parsed as %q/%g", doc.types["serve_refines"], doc.values["serve_refines"])
	}
	if doc.values["servecache_bytes"] != 1234.5 {
		t.Fatalf("gauge value %g", doc.values["servecache_bytes"])
	}
	if doc.histCount["serve_refine_seconds"] != 3 {
		t.Fatalf("_count %g", doc.histCount["serve_refine_seconds"])
	}
	buckets := doc.histBuckets["serve_refine_seconds"]
	if len(buckets) != 3 || buckets[1].le != "1" || buckets[1].cum != 2 {
		t.Fatalf("buckets parsed as %+v (exemplar not stripped?)", buckets)
	}
	for _, name := range []string{"serve_refines", "servecache_bytes", "serve_refine_seconds"} {
		if !doc.has(name) {
			t.Errorf("has(%q) = false", name)
		}
	}
	if doc.has("never_exported") {
		t.Error("has reports an absent metric")
	}
	if names := doc.names(); len(names) != 3 || names[0] != "serve_refine_seconds" {
		t.Errorf("names() = %v", names)
	}
}

func TestParsePromTextRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"non-cumulative buckets": `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="+Inf"} 3
h_count 3
`,
		"missing +Inf bucket": `# TYPE h histogram
h_bucket{le="1"} 2
h_count 2
`,
		"+Inf disagrees with _count": `# TYPE h histogram
h_bucket{le="+Inf"} 3
h_count 4
`,
		"histogram without _count": `# TYPE h histogram
h_bucket{le="+Inf"} 3
`,
		"bucket without le label": `# TYPE h histogram
h_bucket{job="x"} 3
h_count 3
`,
		"sample without TYPE":  "orphan_metric 1\n",
		"sample without value": "# TYPE c counter\nc\n",
		"unparsable value":     "# TYPE c counter\nc banana\n",
		"too many fields":      "# TYPE c counter\nc 1 2 3\n",
		"bad metric name":      "# TYPE c counter\n9bad-name 1\n",
		"bad name in TYPE":     "# TYPE bad-name counter\n",
		"unknown type":         "# TYPE c sausage\n",
		"duplicate TYPE":       "# TYPE c counter\n# TYPE c gauge\n",
		"unterminated labels":  "# TYPE c counter\nc{a=\"b\" 1\n",
	}
	for what, doc := range cases {
		if _, err := parsePromText(doc); err == nil {
			t.Errorf("%s: parsed without error:\n%s", what, doc)
		}
	}
}

func TestParsePromTextTolerates(t *testing.T) {
	// Timestamps, HELP and free comments, and blank lines are all legal.
	doc, err := parsePromText(`
# HELP c helpful text
# a free comment
# TYPE c counter
c 41 1700000000000
`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.values["c"] != 41 {
		t.Fatalf("timestamped sample value %g", doc.values["c"])
	}
}

func TestRunPromRequireAndNonzero(t *testing.T) {
	// runProm matches -require/-nonzero names given in dotted registry form
	// against their sanitized exposition names.
	if code := runProm("test", validPromDoc, "serve.refines,servecache.bytes,serve.refine_seconds", "serve.refines", false); code != 0 {
		t.Fatalf("valid doc with satisfied requirements exited %d", code)
	}
	if code := runProm("test", validPromDoc, "serve.missing_metric", "", false); code == 0 {
		t.Fatal("missing -require name passed")
	}
	if code := runProm("test", validPromDoc, "", "servecache.bytes", false); code == 0 {
		t.Fatal("-nonzero accepted a gauge (must be a counter)")
	}
	if code := runProm("test", "# TYPE c counter\nc 0\n", "", "c", false); code == 0 {
		t.Fatal("-nonzero accepted a zero counter")
	}
	if code := runProm("test", strings.Replace(validPromDoc, `le="+Inf"} 3`, `le="+Inf"} 2`, 1), "", "", false); code == 0 {
		t.Fatal("inconsistent histogram passed")
	}
}
