// Command mgard drives the progressive compression and retrieval pipeline
// on field files.
//
// Subcommands:
//
//	mgard compress -in field.field -out field.pmgd [-levels 5 -planes 32 -codec deflate]
//	               [-workers N]  (pipeline worker count; 0 = one per CPU,
//	               1 = sequential — the output bytes are identical either way)
//	mgard compress -in field.field -tiered dir/      (place levels across storage tiers)
//	mgard inspect  -in field.pmgd
//	mgard retrieve -in field.pmgd -rel 1e-4 [-control theory|emgard|planes]
//	               [-model emgard.gob] [-planes 12,10,8,6,4] [-workers N]
//	               [-orig field.field] [-out recon.field]
//	mgard retrieve -tiered dir/ -rel 1e-4            (read from a tiered store)
//	mgard retrieve -in field.pmgd -rel 1e-4 -fault-rate 0.2 -fault-seed 7
//	               (inject deterministic transient faults and retrieve
//	               through the retry/backoff layer; -retries caps attempts)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pmgard/internal/core"
	"pmgard/internal/decompose"
	"pmgard/internal/emgard"
	"pmgard/internal/faults"
	"pmgard/internal/fieldio"
	"pmgard/internal/grid"
	"pmgard/internal/lossless"
	"pmgard/internal/obs"
	"pmgard/internal/retrieval"
	"pmgard/internal/storage"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "retrieve":
		err = cmdRetrieve(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgard:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mgard <compress|inspect|retrieve> [flags]")
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	in := fs.String("in", "", "input field file")
	out := fs.String("out", "", "output .pmgd file")
	tiered := fs.String("tiered", "", "output tiered-store directory (instead of -out)")
	tiles := fs.String("tiles", "", "output tiled-artifact directory for out-of-core compression (instead of -out)")
	memBudget := fs.String("mem-budget", "", "working-set byte cap for -tiles, e.g. 64M or 1G (0 = one tile)")
	levels := fs.Int("levels", 5, "coefficient levels")
	planes := fs.Int("planes", 32, "bit-planes per level")
	codec := fs.String("codec", "deflate", "lossless codec: deflate, rle, huffman, raw")
	workers := fs.Int("workers", 0, "pipeline worker count (0 = one per CPU, 1 = sequential)")
	var of obs.Flags
	of.Register(fs)
	fs.Parse(args)
	if *in == "" || (*out == "" && *tiered == "" && *tiles == "") {
		return fmt.Errorf("compress: -in and one of -out/-tiered/-tiles are required")
	}
	o, err := of.Start(os.Stderr)
	if err != nil {
		return err
	}
	cod, err := lossless.ByName(*codec)
	if err != nil {
		return err
	}
	cfg := core.Config{
		Decompose:   decompose.Options{Levels: *levels, Update: true, UpdateWeight: 0.25},
		Planes:      *planes,
		Codec:       cod,
		Parallelism: *workers,
		Obs:         o,
	}

	if *tiles != "" {
		// Out-of-core: the field is streamed slab by slab through the
		// windowed reader; it is never resident in full.
		budget, err := parseBytes(*memBudget)
		if err != nil {
			return fmt.Errorf("compress: -mem-budget: %w", err)
		}
		r, err := fieldio.OpenReader(*in)
		if err != nil {
			return err
		}
		defer r.Close()
		ts, err := core.CompressTiled(r, cfg, *tiles, core.TileOptions{MemBudget: budget})
		if err != nil {
			return err
		}
		raw := int64(8)
		for _, d := range ts.Dims {
			raw *= int64(d)
		}
		stored := ts.TotalBytes()
		fmt.Printf("compressed %s (t=%d, dims %v) into %d tiles: %d → %d payload bytes (%.2fx)\n",
			ts.Field, ts.Timestep, ts.Dims, len(ts.Tiles), raw, stored, float64(raw)/float64(stored))
		return of.Finish(o)
	}

	meta, field, err := fieldio.Read(*in)
	if err != nil {
		return err
	}
	var h *core.Header
	if *tiered != "" {
		hier, err := storage.DefaultHierarchy(*levels)
		if err != nil {
			return err
		}
		h, err = core.CompressToTiered(field, cfg, meta.Field, meta.Timestep, *tiered, hier)
		if err != nil {
			return err
		}
	} else {
		// Segments stream to disk as planes finish compressing; the
		// output bytes are identical to the in-memory path at any worker
		// count.
		h, err = core.CompressToFile(field, cfg, meta.Field, meta.Timestep, *out)
		if err != nil {
			return err
		}
	}
	raw := int64(8 * field.Len())
	stored := h.TotalBytes()
	fmt.Printf("compressed %s (t=%d, dims %v): %d → %d payload bytes (%.2fx)\n",
		meta.Field, meta.Timestep, field.Dims(), raw, stored, float64(raw)/float64(stored))
	return of.Finish(o)
}

// parseBytes parses a byte size like "67108864", "64M" or "1G"; empty
// means 0.
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return v * mult, nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "input .pmgd file")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("inspect: -in is required")
	}
	h, st, err := core.OpenFile(*in)
	if err != nil {
		return err
	}
	defer st.Close()
	fmt.Printf("field %s  t=%d  dims %v  planes %d  codec %s  range %.6g\n",
		h.FieldName, h.Timestep, h.Dims, h.Planes, h.CodecName, h.ValueRange)
	fmt.Printf("theory constant C = %.4g; stored payload %d bytes\n",
		h.TheoryEstimator().C, h.TotalBytes())
	for l, lm := range h.Levels {
		var total int64
		for _, s := range lm.PlaneSizes {
			total += s
		}
		fmt.Printf("  level %d: %7d coeffs  exp %4d  bytes %8d  Err[0]=%.3e  Err[B]=%.3e\n",
			l, lm.N, lm.Exponent, total, lm.ErrMatrix[0], lm.ErrMatrix[len(lm.ErrMatrix)-1])
	}
	return nil
}

func cmdRetrieve(args []string) error {
	fs := flag.NewFlagSet("retrieve", flag.ExitOnError)
	in := fs.String("in", "", "input .pmgd file")
	tiered := fs.String("tiered", "", "input tiered-store directory (instead of -in)")
	tiles := fs.String("tiles", "", "input tiled-artifact directory (instead of -in); streams slabs to -out")
	rel := fs.Float64("rel", 0, "relative error bound")
	abs := fs.Float64("abs", 0, "absolute error bound (overrides -rel)")
	control := fs.String("control", "theory", "error control: theory, emgard or planes")
	model := fs.String("model", "", "trained E-MGARD model (for -control emgard)")
	planesArg := fs.String("planes", "", "comma-separated per-level plane counts (for -control planes)")
	orig := fs.String("orig", "", "original field file, to report the achieved error")
	out := fs.String("out", "", "write the reconstruction to this field file")
	faultRate := fs.Float64("fault-rate", 0, "inject transient read faults at this rate (0..1) for resilience testing")
	faultSeed := fs.Int64("fault-seed", 1, "seed for deterministic fault injection")
	retries := fs.Int("retries", 0, "max read attempts per segment through the retry layer (0 = library default)")
	workers := fs.Int("workers", 0, "retrieval worker count (0 = one per CPU, 1 = sequential)")
	var of obs.Flags
	of.Register(fs)
	fs.Parse(args)
	if *in == "" && *tiered == "" && *tiles == "" {
		return fmt.Errorf("retrieve: -in, -tiered or -tiles is required")
	}
	o, oErr := of.Start(os.Stderr)
	if oErr != nil {
		return oErr
	}
	if *tiles != "" {
		if *out == "" {
			return fmt.Errorf("retrieve: -tiles requires -out (slabs stream to a field file)")
		}
		if *rel == 0 {
			return fmt.Errorf("retrieve: -tiles requires -rel")
		}
		ts, stats, err := core.RetrieveTiledRel(*tiles, *rel, *out, *workers)
		if err != nil {
			return err
		}
		fmt.Printf("retrieved %d tiles: %d of %d stored bytes (%.1f%%)\n",
			len(ts.Tiles), stats.BytesFetched, stats.BytesStored,
			100*float64(stats.BytesFetched)/float64(stats.BytesStored))
		if *orig != "" {
			_, origField, err := fieldio.Read(*orig)
			if err != nil {
				return err
			}
			_, rec, err := fieldio.Read(*out)
			if err != nil {
				return err
			}
			fmt.Printf("achieved max abs error: %.6e (requested %.6e)\n",
				grid.MaxAbsDiff(origField, rec), *rel*ts.ValueRange)
		}
		fmt.Printf("wrote reconstruction to %s\n", *out)
		return of.Finish(o)
	}
	var h *core.Header
	var src core.SegmentSource
	var flatStore *storage.Store
	var tieredStore *storage.TieredStore
	if *tiered != "" {
		var err error
		h, tieredStore, err = core.OpenTiered(*tiered)
		if err != nil {
			return err
		}
		defer tieredStore.Close()
		tieredStore.Instrument(o)
		src = core.TieredSource{Store: tieredStore}
	} else {
		var err error
		h, flatStore, err = core.OpenFile(*in)
		if err != nil {
			return err
		}
		defer flatStore.Close()
		src = core.StoreSource{Store: flatStore}
	}

	if *faultRate < 0 || *faultRate > 1 {
		return fmt.Errorf("retrieve: -fault-rate %g out of [0,1]", *faultRate)
	}
	var flaky *faults.Source
	var retrying *storage.RetryingSource
	if *faultRate > 0 || *retries > 0 {
		if *faultRate > 0 {
			flaky = faults.WrapSource(src, faults.Config{Seed: *faultSeed, TransientRate: *faultRate})
			if o != nil {
				flaky.Instrument(o)
			}
			src = flaky
		}
		pol := storage.DefaultRetryPolicy()
		if *retries > 0 {
			pol.MaxAttempts = *retries
		}
		retrying = storage.NewRetryingSource(nil, src, pol)
		if o != nil {
			retrying.Instrument(o)
		}
		src = retrying
	}

	tol := *abs
	if tol == 0 && *control != "planes" {
		if *rel == 0 {
			return fmt.Errorf("retrieve: need -rel or -abs (unless -control planes)")
		}
		tol = h.AbsTolerance(*rel)
	}

	var rec *grid.Tensor
	var plan retrieval.Plan
	var err error
	switch *control {
	case "theory":
		rec, plan, err = core.RetrieveToleranceObs(h, src, h.TheoryEstimator(), tol, *workers, o)
	case "emgard":
		if *model == "" {
			return fmt.Errorf("retrieve: -control emgard requires -model")
		}
		var m *emgard.Model
		m, err = emgard.Load(*model)
		if err != nil {
			return err
		}
		var est retrieval.PerLevelEstimator
		est, err = m.Estimator(h.LevelPools)
		if err != nil {
			return err
		}
		rec, plan, err = core.RetrieveToleranceObs(h, src, est, tol, *workers, o)
	case "planes":
		if *planesArg == "" {
			return fmt.Errorf("retrieve: -control planes requires -planes")
		}
		var planes []int
		for _, s := range strings.Split(*planesArg, ",") {
			v, perr := strconv.Atoi(strings.TrimSpace(s))
			if perr != nil {
				return fmt.Errorf("retrieve: bad plane count %q", s)
			}
			planes = append(planes, v)
		}
		rec, plan, err = core.RetrievePlanesObs(h, src, planes, *workers, o)
	default:
		return fmt.Errorf("retrieve: unknown control %q", *control)
	}
	if err != nil {
		return err
	}

	fmt.Printf("plan: planes per level %v\n", plan.Planes)
	printFaultReport(retrying, flaky, *faultRate, *faultSeed)
	if flatStore != nil {
		fmt.Printf("retrieved %d of %d stored bytes (%.1f%%) in %d ranged reads\n",
			flatStore.BytesRead(), h.TotalBytes(),
			100*float64(flatStore.BytesRead())/float64(h.TotalBytes()), flatStore.Requests())
	} else {
		var total int64
		for tier, b := range tieredStore.TierBytes() {
			fmt.Printf("tier %-6s %8d bytes in %d reads\n", tier, b, tieredStore.TierRequests()[tier])
			total += b
		}
		fmt.Printf("retrieved %d of %d stored bytes (%.1f%%)\n", total, h.TotalBytes(),
			100*float64(total)/float64(h.TotalBytes()))
	}

	hier, err := storage.DefaultHierarchy(len(h.Levels))
	if err == nil {
		// A plane prefix is contiguous in the store layout, so each level
		// costs one ranged read.
		reqs := make([]int, len(plan.Planes))
		for l, b := range plan.Planes {
			if b > 0 {
				reqs[l] = 1
			}
		}
		if tm, terr := hier.PlanTime(plan.BytesPerLevel, reqs); terr == nil {
			fmt.Printf("modeled I/O time on default hierarchy: %.4g s\n", tm)
		}
		if o != nil {
			// Per-tier modeled read time, so the metrics snapshot carries
			// the same cost model the report prints.
			perTier := make(map[string]float64)
			for l := range plan.BytesPerLevel {
				if t, terr := hier.ReadTime(l, plan.BytesPerLevel[l], reqs[l]); terr == nil {
					perTier[hier.Tiers[hier.Placement[l]].Name] += t
				}
			}
			for name, t := range perTier {
				o.Gauge("storage.tier." + name + ".modeled_read_seconds").Set(t)
			}
		}
	}
	if *orig != "" {
		_, origField, err := fieldio.Read(*orig)
		if err != nil {
			return err
		}
		fmt.Printf("achieved max abs error: %.6e (requested %.6e)\n",
			grid.MaxAbsDiff(origField, rec), tol)
		fmt.Printf("PSNR: %.2f dB\n", grid.PSNR(origField, rec))
	}
	if *out != "" {
		if err := fieldio.Write(*out, fieldio.Meta{Field: h.FieldName, Timestep: h.Timestep}, rec); err != nil {
			return err
		}
		fmt.Printf("wrote reconstruction to %s\n", *out)
	}
	return of.Finish(o)
}

// printFaultReport prints one coherent view of a fault-injected run: the
// injector's counts (what went wrong) interleaved with the retry layer's
// (what it cost to recover). Both read the same live counters the metrics
// snapshot exports, so the report and -metrics-out always agree.
func printFaultReport(retrying *storage.RetryingSource, flaky *faults.Source, rate float64, seed int64) {
	if retrying == nil && flaky == nil {
		return
	}
	fmt.Println("fault report:")
	if flaky != nil {
		is := flaky.Stats()
		fmt.Printf("  injected:  %d transient, %d permanent, %d corrupted, %d truncated over %d source reads (rate %.2g, seed %d)\n",
			is.Transient, is.Permanent, is.Corrupted, is.Truncated, is.Reads, rate, seed)
	}
	if retrying != nil {
		rs := retrying.Stats()
		fmt.Printf("  recovery:  %d reads, %d retries, %d recovered, %d exhausted, %d quarantined\n",
			rs.Reads, rs.Retries, rs.Recovered, rs.Exhausted, rs.Quarantined)
		fmt.Printf("  transfer:  %d bytes delivered, %d bytes wasted, %.3gs backing off\n",
			rs.BytesTransferred, rs.BytesWasted, rs.BackoffSeconds)
	}
}
