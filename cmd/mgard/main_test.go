package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"pmgard/internal/fieldio"
	"pmgard/internal/obs"
	"pmgard/internal/sim/warpx"
)

// writeTestField produces a small field file for the CLI tests.
func writeTestField(t *testing.T, dir string) string {
	t.Helper()
	f, err := warpx.DefaultConfig(9, 9, 9).Field("Jx", 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "jx.field")
	if err := fieldio.Write(path, fieldio.Meta{Field: "Jx", Timestep: 3}, f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompressInspectRetrieveFlow(t *testing.T) {
	dir := t.TempDir()
	field := writeTestField(t, dir)
	pmgd := filepath.Join(dir, "jx.pmgd")

	if err := cmdCompress([]string{"-in", field, "-out", pmgd}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInspect([]string{"-in", pmgd}); err != nil {
		t.Fatal(err)
	}
	recon := filepath.Join(dir, "recon.field")
	if err := cmdRetrieve([]string{
		"-in", pmgd, "-rel", "1e-3", "-orig", field, "-out", recon,
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fieldio.Read(recon); err != nil {
		t.Fatalf("reconstruction unreadable: %v", err)
	}
}

func TestTieredFlow(t *testing.T) {
	dir := t.TempDir()
	field := writeTestField(t, dir)
	store := filepath.Join(dir, "tiered")
	if err := cmdCompress([]string{"-in", field, "-tiered", store}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRetrieve([]string{"-tiered", store, "-rel", "1e-3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRetrieveWithExplicitPlanes(t *testing.T) {
	dir := t.TempDir()
	field := writeTestField(t, dir)
	pmgd := filepath.Join(dir, "jx.pmgd")
	if err := cmdCompress([]string{"-in", field, "-out", pmgd}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRetrieve([]string{
		"-in", pmgd, "-control", "planes", "-planes", "8,8,8,8,8",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIValidation(t *testing.T) {
	if err := cmdCompress([]string{}); err == nil {
		t.Error("compress without args accepted")
	}
	if err := cmdInspect([]string{}); err == nil {
		t.Error("inspect without args accepted")
	}
	if err := cmdRetrieve([]string{}); err == nil {
		t.Error("retrieve without args accepted")
	}
	dir := t.TempDir()
	field := writeTestField(t, dir)
	pmgd := filepath.Join(dir, "jx.pmgd")
	if err := cmdCompress([]string{"-in", field, "-out", pmgd}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRetrieve([]string{"-in", pmgd}); err == nil {
		t.Error("retrieve without tolerance accepted")
	}
	if err := cmdRetrieve([]string{"-in", pmgd, "-rel", "1e-3", "-control", "bogus"}); err == nil {
		t.Error("unknown control accepted")
	}
	if err := cmdRetrieve([]string{"-in", pmgd, "-rel", "1e-3", "-control", "emgard"}); err == nil {
		t.Error("emgard control without model accepted")
	}
	if err := cmdRetrieve([]string{"-in", pmgd, "-control", "planes", "-planes", "a,b"}); err == nil {
		t.Error("malformed plane list accepted")
	}
}

// TestWorkersFlagBitIdentical compresses the same field at several -workers
// settings and asserts the produced files are byte-for-byte identical, then
// retrieves at the same settings through the same flags.
func TestWorkersFlagBitIdentical(t *testing.T) {
	dir := t.TempDir()
	field := writeTestField(t, dir)
	var ref []byte
	for _, w := range []string{"1", "2", "8"} {
		pmgd := filepath.Join(dir, "jx-w"+w+".pmgd")
		if err := cmdCompress([]string{"-in", field, "-out", pmgd, "-workers", w}); err != nil {
			t.Fatalf("workers=%s: %v", w, err)
		}
		data, err := os.ReadFile(pmgd)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = data
		} else if !bytes.Equal(data, ref) {
			t.Fatalf("workers=%s: compressed file differs from workers=1", w)
		}
		if err := cmdRetrieve([]string{"-in", pmgd, "-rel", "1e-3", "-workers", w}); err != nil {
			t.Fatalf("retrieve workers=%s: %v", w, err)
		}
	}
}

func TestRetrieveWithFaultInjection(t *testing.T) {
	dir := t.TempDir()
	field := writeTestField(t, dir)
	pmgd := filepath.Join(dir, "jx.pmgd")
	if err := cmdCompress([]string{"-in", field, "-out", pmgd}); err != nil {
		t.Fatal(err)
	}
	// A 20% transient rate with the retry layer must still retrieve and
	// verify against the original.
	recon := filepath.Join(dir, "recon.field")
	if err := cmdRetrieve([]string{
		"-in", pmgd, "-rel", "1e-3", "-orig", field, "-out", recon,
		"-fault-rate", "0.2", "-fault-seed", "7",
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fieldio.Read(recon); err != nil {
		t.Fatalf("reconstruction unreadable: %v", err)
	}
	// The retry layer alone (no injection) is also valid.
	if err := cmdRetrieve([]string{"-in", pmgd, "-rel", "1e-3", "-retries", "3"}); err != nil {
		t.Fatal(err)
	}
	// Out-of-range rates are rejected.
	if err := cmdRetrieve([]string{"-in", pmgd, "-rel", "1e-3", "-fault-rate", "1.5"}); err == nil {
		t.Error("fault rate above 1 accepted")
	}
	if err := cmdRetrieve([]string{"-in", pmgd, "-rel", "1e-3", "-fault-rate", "-0.1"}); err == nil {
		t.Error("negative fault rate accepted")
	}
}

// TestObservabilityFlags is the end-to-end check of the acceptance
// criterion: a fault-injected retrieve with -metrics-out emits a snapshot
// carrying per-level fetch counters, retry counts, and pool wait-time
// histograms, and -trace-out emits a span timeline covering every
// pipeline stage.
func TestObservabilityFlags(t *testing.T) {
	dir := t.TempDir()
	field := writeTestField(t, dir)
	pmgd := filepath.Join(dir, "jx.pmgd")
	cm := filepath.Join(dir, "cm.json")
	ct := filepath.Join(dir, "ct.json")
	if err := cmdCompress([]string{"-in", field, "-out", pmgd,
		"-metrics-out", cm, "-trace-out", ct}); err != nil {
		t.Fatal(err)
	}
	requireMetrics(t, cm,
		"decompose.transforms", "bitplane.levels_encoded",
		"lossless.segments_compressed", "core.compress.fields",
		"pool.bitplane.encode.wait_seconds")
	requireStages(t, ct, "compress", "decompose", "bitplane.encode", "lossless.compress")

	rm := filepath.Join(dir, "rm.json")
	rt := filepath.Join(dir, "rt.json")
	if err := cmdRetrieve([]string{"-in", pmgd, "-rel", "1e-3",
		"-fault-rate", "0.2", "-fault-seed", "7",
		"-metrics-out", rm, "-trace-out", rt}); err != nil {
		t.Fatal(err)
	}
	requireMetrics(t, rm,
		"core.fetch.bytes", "core.fetch.planes",
		"core.fetch.level0.bytes", "core.fetch.level0.planes",
		"storage.retry.reads", "storage.retry.retries",
		"faults.reads", "faults.injected.transient",
		"pool.fetch.wait_seconds", "pool.fetch.task_seconds",
		"retrieval.greedy.estimator_calls")
	requireStages(t, rt, "session", "retrieval.plan", "storage.fetch",
		"storage.read", "lossless.decompress", "bitplane.decode",
		"decompose.recompose")
}

// requireMetrics asserts the snapshot file contains every named metric.
func requireMetrics(t *testing.T, path string, names ...string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	for _, name := range names {
		if !snap.Has(name) {
			t.Errorf("%s missing metric %q", path, name)
		}
	}
}

// requireStages asserts the trace dump contains a span for every stage.
func requireStages(t *testing.T, path string, names ...string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump obs.TraceDump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	have := make(map[string]bool)
	for _, s := range dump.Spans {
		have[s.Name] = true
	}
	for _, name := range names {
		if !have[name] {
			t.Errorf("%s missing stage %q", path, name)
		}
	}
}

// TestTiledFlow drives the out-of-core path end to end: compress with a
// memory budget into a tiled artifact, retrieve it back streaming, and
// check the reconstruction against the original within the bound.
func TestTiledFlow(t *testing.T) {
	dir := t.TempDir()
	f, err := warpx.DefaultConfig(24, 12, 12).Field("Jx", 3)
	if err != nil {
		t.Fatal(err)
	}
	field := filepath.Join(dir, "jx.field")
	if err := fieldio.Write(field, fieldio.Meta{Field: "Jx", Timestep: 3}, f); err != nil {
		t.Fatal(err)
	}
	tiles := filepath.Join(dir, "tiles")
	if err := cmdCompress([]string{"-in", field, "-tiles", tiles,
		"-mem-budget", "64K", "-levels", "3"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(tiles, "tiles.json")); err != nil {
		t.Fatalf("manifest missing: %v", err)
	}
	recon := filepath.Join(dir, "recon.field")
	if err := cmdRetrieve([]string{"-tiles", tiles, "-rel", "1e-3",
		"-out", recon, "-orig", field}); err != nil {
		t.Fatal(err)
	}
	_, rec, err := fieldio.Read(recon)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != f.Len() {
		t.Fatalf("reconstruction has %d cells, want %d", rec.Len(), f.Len())
	}
	// Validation: -tiles without -out or -rel is refused.
	if err := cmdRetrieve([]string{"-tiles", tiles, "-rel", "1e-3"}); err == nil {
		t.Error("tiled retrieve without -out accepted")
	}
	if err := cmdRetrieve([]string{"-tiles", tiles, "-out", recon}); err == nil {
		t.Error("tiled retrieve without -rel accepted")
	}
	// Bad -mem-budget strings are rejected.
	if err := cmdCompress([]string{"-in", field, "-tiles", tiles, "-mem-budget", "64Q"}); err == nil {
		t.Error("bad mem-budget accepted")
	}
}
