// Command compare pits the progressive pipeline against the one-shot
// SZ-style and ZFP-style baselines on a field file: per-bound archive sizes,
// progressive retrieval bytes, achieved errors, and the total storage cost
// of serving every bound (the paper's §I motivation).
//
// With -probe it instead compares the registered progressive-codec backends
// against each other on each input field — the quick probe cmd/serve uses
// to pick a backend per field — and -bench-out records the comparison as a
// BENCH_codec.json document.
//
// Usage:
//
//	compare -in field.field [-bounds 1e-6,1e-4,1e-2]
//	compare -probe -in a.field,b.field [-bounds ...] [-bench-out BENCH_codec.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"pmgard/internal/codec"
	"pmgard/internal/core"
	"pmgard/internal/fieldio"
	"pmgard/internal/grid"
	"pmgard/internal/sz"
	"pmgard/internal/zfp"
)

func main() {
	var (
		in        = flag.String("in", "", "input field file(s), comma-separated in probe mode")
		boundsArg = flag.String("bounds", "1e-8,1e-6,1e-4,1e-2,1e-1", "comma-separated relative error bounds")
		probe     = flag.Bool("probe", false, "compare progressive-codec backends per field instead of one-shot baselines")
		benchOut  = flag.String("bench-out", "", "write the probe comparison as JSON to this path (probe mode)")
	)
	flag.Parse()
	var err error
	if *probe {
		err = runProbe(*in, *boundsArg, *benchOut, os.Stdout)
	} else {
		err = run(*in, *boundsArg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
}

// benchDoc is the BENCH_codec.json document shape: the probed bounds plus
// one backend comparison per field.
type benchDoc struct {
	// Bounds are the relative error bounds every probe swept.
	Bounds []float64 `json:"bounds"`
	// Backends are the codec IDs compared.
	Backends []string `json:"backends"`
	// Fields holds one probe comparison per input field.
	Fields []core.ProbeComparison `json:"fields"`
}

// parseBounds parses a comma-separated positive float list.
func parseBounds(boundsArg string) ([]float64, error) {
	var bounds []float64
	for _, s := range strings.Split(boundsArg, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad bound %q", s)
		}
		bounds = append(bounds, v)
	}
	return bounds, nil
}

// runProbe compares the registered backends on every input field and
// optionally records the result document.
func runProbe(in, boundsArg, benchOut string, w io.Writer) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	bounds, err := parseBounds(boundsArg)
	if err != nil {
		return err
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(bounds)))
	doc := benchDoc{Bounds: bounds, Backends: codec.IDs()}
	for _, path := range strings.Split(in, ",") {
		meta, field, err := fieldio.Read(strings.TrimSpace(path))
		if err != nil {
			return err
		}
		cmp, err := core.ProbeBackends(field, core.DefaultConfig(), meta.Field, bounds, nil)
		if err != nil {
			return err
		}
		doc.Fields = append(doc.Fields, *cmp)
		fmt.Fprintf(w, "field %s (dims %v): winner %s\n", meta.Field, field.Dims(), cmp.Winner)
		for _, r := range cmp.Results {
			fmt.Fprintf(w, "  %-8s stored %7d B, retrieval score %8d B", r.Backend, r.StoredBytes, r.Score)
			if r.Backend == cmp.Winner {
				fmt.Fprint(w, "  <- selected")
			}
			fmt.Fprintln(w)
		}
	}
	if benchOut != "" {
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", benchOut)
	}
	return nil
}

func run(in, boundsArg string) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	meta, field, err := fieldio.Read(in)
	if err != nil {
		return err
	}
	var bounds []float64
	for _, s := range strings.Split(boundsArg, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("bad bound %q", s)
		}
		bounds = append(bounds, v)
	}

	c, err := core.Compress(field, core.DefaultConfig(), meta.Field, meta.Timestep)
	if err != nil {
		return err
	}
	h := &c.Header
	est := h.TheoryEstimator()
	fmt.Printf("field %s (dims %v): raw %d bytes, progressive store %d bytes\n\n",
		meta.Field, field.Dims(), 8*field.Len(), h.TotalBytes())
	fmt.Println("rel_bound   sz_bytes  zfp_bytes  prog_bytes     sz_err    zfp_err   prog_err")

	var szTotal, zfpTotal int64
	for _, rel := range bounds {
		tol := h.AbsTolerance(rel)
		if tol <= 0 {
			return fmt.Errorf("field has zero range; relative bounds are meaningless")
		}
		szBlob, err := sz.Compress(field, tol)
		if err != nil {
			return err
		}
		szRec, _, err := sz.Decompress(szBlob)
		if err != nil {
			return err
		}
		zfpBlob, err := zfp.Compress(field, tol)
		if err != nil {
			return err
		}
		zfpRec, _, err := zfp.Decompress(zfpBlob)
		if err != nil {
			return err
		}
		rec, plan, err := core.RetrieveTolerance(h, c, est, tol)
		if err != nil {
			return err
		}
		szTotal += int64(len(szBlob))
		zfpTotal += int64(len(zfpBlob))
		fmt.Printf("%9.0e %10d %10d %11d %10.2e %10.2e %10.2e\n",
			rel, len(szBlob), len(zfpBlob), plan.Bytes,
			grid.MaxAbsDiff(field, szRec),
			grid.MaxAbsDiff(field, zfpRec),
			grid.MaxAbsDiff(field, rec))
	}
	fmt.Printf("\nstorage to serve all %d bounds: sz %d, zfp %d, progressive %d (stored once)\n",
		len(bounds), szTotal, zfpTotal, h.TotalBytes())
	return nil
}
