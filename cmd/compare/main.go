// Command compare pits the progressive pipeline against the one-shot
// SZ-style and ZFP-style baselines on a field file: per-bound archive sizes,
// progressive retrieval bytes, achieved errors, and the total storage cost
// of serving every bound (the paper's §I motivation).
//
// Usage:
//
//	compare -in field.field [-bounds 1e-6,1e-4,1e-2]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pmgard/internal/core"
	"pmgard/internal/fieldio"
	"pmgard/internal/grid"
	"pmgard/internal/sz"
	"pmgard/internal/zfp"
)

func main() {
	var (
		in        = flag.String("in", "", "input field file")
		boundsArg = flag.String("bounds", "1e-8,1e-6,1e-4,1e-2,1e-1", "comma-separated relative error bounds")
	)
	flag.Parse()
	if err := run(*in, *boundsArg); err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
}

func run(in, boundsArg string) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	meta, field, err := fieldio.Read(in)
	if err != nil {
		return err
	}
	var bounds []float64
	for _, s := range strings.Split(boundsArg, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("bad bound %q", s)
		}
		bounds = append(bounds, v)
	}

	c, err := core.Compress(field, core.DefaultConfig(), meta.Field, meta.Timestep)
	if err != nil {
		return err
	}
	h := &c.Header
	est := h.TheoryEstimator()
	fmt.Printf("field %s (dims %v): raw %d bytes, progressive store %d bytes\n\n",
		meta.Field, field.Dims(), 8*field.Len(), h.TotalBytes())
	fmt.Println("rel_bound   sz_bytes  zfp_bytes  prog_bytes     sz_err    zfp_err   prog_err")

	var szTotal, zfpTotal int64
	for _, rel := range bounds {
		tol := h.AbsTolerance(rel)
		if tol <= 0 {
			return fmt.Errorf("field has zero range; relative bounds are meaningless")
		}
		szBlob, err := sz.Compress(field, tol)
		if err != nil {
			return err
		}
		szRec, _, err := sz.Decompress(szBlob)
		if err != nil {
			return err
		}
		zfpBlob, err := zfp.Compress(field, tol)
		if err != nil {
			return err
		}
		zfpRec, _, err := zfp.Decompress(zfpBlob)
		if err != nil {
			return err
		}
		rec, plan, err := core.RetrieveTolerance(h, c, est, tol)
		if err != nil {
			return err
		}
		szTotal += int64(len(szBlob))
		zfpTotal += int64(len(zfpBlob))
		fmt.Printf("%9.0e %10d %10d %11d %10.2e %10.2e %10.2e\n",
			rel, len(szBlob), len(zfpBlob), plan.Bytes,
			grid.MaxAbsDiff(field, szRec),
			grid.MaxAbsDiff(field, zfpRec),
			grid.MaxAbsDiff(field, rec))
	}
	fmt.Printf("\nstorage to serve all %d bounds: sz %d, zfp %d, progressive %d (stored once)\n",
		len(bounds), szTotal, zfpTotal, h.TotalBytes())
	return nil
}
