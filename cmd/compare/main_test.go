package main

import (
	"path/filepath"
	"testing"

	"pmgard/internal/fieldio"
	"pmgard/internal/sim/warpx"
)

func TestCompareFlow(t *testing.T) {
	dir := t.TempDir()
	f, err := warpx.DefaultConfig(9, 9, 9).Field("Ex", 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ex.field")
	if err := fieldio.Write(path, fieldio.Meta{Field: "Ex", Timestep: 2}, f); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "1e-4,1e-2"); err != nil {
		t.Fatal(err)
	}
}

func TestCompareValidation(t *testing.T) {
	if err := run("", "1e-4"); err == nil {
		t.Error("missing input accepted")
	}
	dir := t.TempDir()
	f, _ := warpx.DefaultConfig(9, 9, 9).Field("Ex", 0)
	path := filepath.Join(dir, "x.field")
	fieldio.Write(path, fieldio.Meta{Field: "Ex"}, f)
	if err := run(path, "abc"); err == nil {
		t.Error("malformed bound accepted")
	}
	if err := run(path, "-1"); err == nil {
		t.Error("negative bound accepted")
	}
}
