package main

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pmgard/internal/fieldio"
	"pmgard/internal/grid"
)

// polyField is the golden smooth probe input: a low-order polynomial that
// multilinear interpolation predicts (nearly) exactly, so the interp backend
// should win its probe decisively.
func polyField(n int) *grid.Tensor {
	f := grid.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x := float64(i) / float64(n-1)
			y := float64(j) / float64(n-1)
			f.Data()[i*n+j] = 1 + x + y + x*y + 0.5*x*x - 0.25*y*y
		}
	}
	return f
}

// kolmoField is the golden turbulent probe input: a Kolmogorov-style octave
// wave sum with k^(-5/3) amplitudes and seeded random phases/directions. The
// multi-octave content favors the mgard backend, whose lifting update step
// anti-aliases coarse levels.
func kolmoField(n int, seed int64) *grid.Tensor {
	prng := rand.New(rand.NewSource(seed))
	type mode struct{ kx, ky, amp, phase float64 }
	var modes []mode
	for oct := 0; oct < 5; oct++ {
		k := math.Pi * float64(int(1)<<oct)
		amp := math.Pow(float64(int(1)<<oct), -5.0/3.0)
		for m := 0; m < 4; m++ {
			theta := prng.Float64() * 2 * math.Pi
			modes = append(modes, mode{k * math.Cos(theta), k * math.Sin(theta), amp, prng.Float64() * 2 * math.Pi})
		}
	}
	f := grid.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x := float64(i) / float64(n-1)
			y := float64(j) / float64(n-1)
			s := 0.0
			for _, md := range modes {
				s += md.amp * math.Sin(md.kx*x+md.ky*y+md.phase)
			}
			f.Data()[i*n+j] = s
		}
	}
	return f
}

// TestProbeSelectionGolden pins the probe's backend choice on two
// deterministic fields: the smooth polynomial picks the interpolation
// backend, the seeded turbulence picks mgard. Everything in the pipeline is
// seeded, so a flip here means the probe metric or a backend changed.
func TestProbeSelectionGolden(t *testing.T) {
	dir := t.TempDir()
	smoothPath := filepath.Join(dir, "smooth.field")
	turbPath := filepath.Join(dir, "turb.field")
	if err := fieldio.Write(smoothPath, fieldio.Meta{Field: "smooth", Dims: []int{33, 33}}, polyField(33)); err != nil {
		t.Fatal(err)
	}
	if err := fieldio.Write(turbPath, fieldio.Meta{Field: "turb", Dims: []int{33, 33}}, kolmoField(33, 3)); err != nil {
		t.Fatal(err)
	}
	benchPath := filepath.Join(dir, "BENCH_codec.json")
	var out bytes.Buffer
	if err := runProbe(smoothPath+","+turbPath, "1e-2,1e-3,1e-4,1e-5,1e-6", benchPath, &out); err != nil {
		t.Fatalf("runProbe: %v\noutput:\n%s", err, out.String())
	}

	blob, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchDoc
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("BENCH_codec.json does not parse: %v", err)
	}
	winners := map[string]string{}
	for _, f := range doc.Fields {
		winners[f.Field] = f.Winner
		if len(f.Results) < 2 {
			t.Fatalf("field %s probed %d backends, want at least mgard and interp", f.Field, len(f.Results))
		}
	}
	if winners["smooth"] != "interp" {
		t.Errorf("smooth polynomial field selected %q, want interp", winners["smooth"])
	}
	if winners["turb"] != "mgard" {
		t.Errorf("turbulent field selected %q, want mgard", winners["turb"])
	}
	for _, want := range []string{"field smooth", "field turb", "<- selected", "wrote " + benchPath} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("probe output missing %q:\n%s", want, out.String())
		}
	}

	// Determinism: a second run must produce byte-identical JSON.
	var out2 bytes.Buffer
	if err := runProbe(smoothPath+","+turbPath, "1e-2,1e-3,1e-4,1e-5,1e-6", benchPath, &out2); err != nil {
		t.Fatal(err)
	}
	blob2, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Error("probe output is not deterministic across runs")
	}
}
