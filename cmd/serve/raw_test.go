package main

import (
	"net/http/httptest"
	"path/filepath"
	"testing"

	"pmgard/internal/fieldio"
	"pmgard/internal/grid"
	"pmgard/internal/obs"
)

// TestServeRawProbesBackend pins the -raw startup path: a smooth polynomial
// field must be probed, refactored under the interp backend (the probe's
// deterministic winner for it), and served correctly — /open reports the
// selected backend and /refine reaches tolerance through it.
func TestServeRawProbesBackend(t *testing.T) {
	n := 33
	f := grid.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x := float64(i) / float64(n-1)
			y := float64(j) / float64(n-1)
			f.Data()[i*n+j] = 1 + x + y + x*y + 0.5*x*x - 0.25*y*y
		}
	}
	path := filepath.Join(t.TempDir(), "smooth.field")
	if err := fieldio.Write(path, fieldio.Meta{Field: "smooth", Dims: []int{n, n}}, f); err != nil {
		t.Fatal(err)
	}

	srv, err := newServer(serverConfig{CacheBytes: 64 << 20, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.close)
	backend, err := srv.addRaw(path)
	if err != nil {
		t.Fatalf("addRaw: %v", err)
	}
	if backend != "interp" {
		t.Fatalf("probe selected %q for the polynomial field, want interp", backend)
	}

	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	var open openResponse
	getJSON(t, ts, "/open?field=smooth", &open)
	if open.Backend != "interp" {
		t.Fatalf("/open backend = %q, want interp", open.Backend)
	}
	var refine refineResponse
	getJSON(t, ts, "/refine?field=smooth&rel=1e-5", &refine)
	if refine.Degraded {
		t.Fatal("raw-served refine reported degradation")
	}
	if refine.BytesFetched <= 0 {
		t.Fatalf("refine fetched %d bytes", refine.BytesFetched)
	}
}
