package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pmgard/internal/obs"
)

// logBuffer is a concurrency-safe sink for the access log under test.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// lines parses every JSON access-log line written so far.
func (b *logBuffer) lines(t *testing.T) []map[string]any {
	t.Helper()
	b.mu.Lock()
	raw := b.buf.String()
	b.mu.Unlock()
	var out []map[string]any
	for _, ln := range strings.Split(raw, "\n") {
		if strings.TrimSpace(ln) == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("unparsable access log line %q: %v", ln, err)
		}
		out = append(out, m)
	}
	return out
}

// tracedResult is one request observation including its trace identity.
type tracedResult struct {
	status  int
	traceID string
	detail  string
}

// doTraced fires one GET and captures status, the traceparent response
// header's trace id, and the error detail tag if any.
func doTraced(t *testing.T, ts *httptest.Server, path string) tracedResult {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	res := tracedResult{status: resp.StatusCode}
	tc, ok := obs.ParseTraceParent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("GET %s: bad traceparent response header %q", path, resp.Header.Get("traceparent"))
	}
	res.traceID = tc.TraceID
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil {
			res.detail = e.Detail
		}
	}
	return res
}

// waitForCond polls cond until it holds or a 5s deadline expires.
func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAccessLogOneLinePerRequest drives the serving tier through its
// status taxonomy — 200, 404, 504 deadline, 503 shed, 499 client gone —
// and asserts the access log carries exactly one structured line per
// request, each with a well-formed trace id matching the traceparent
// response header where one was observable.
func TestAccessLogOneLinePerRequest(t *testing.T) {
	c := buildCompressed(t, "Jx")
	stall := &stallSource{inner: c}
	logBuf := &logBuffer{}
	_, ts, _ := newChaosServer(t, serverConfig{
		CacheBytes:     64 << 20,
		RequestTimeout: 30 * time.Second,
		MaxInflight:    1,
		MaxQueue:       0,
		AccessLog:      logBuf,
		SLOLatency:     time.Minute,
	}, &c.Header, stall)

	wantTrace := map[string]int{} // trace id -> expected logged status
	// 200: a healthy refine.
	ok := doTraced(t, ts, "/refine?field=Jx&rel=1e-3")
	if ok.status != 200 {
		t.Fatalf("healthy refine status %d", ok.status)
	}
	wantTrace[ok.traceID] = 200
	// 404: unknown field.
	nf := doTraced(t, ts, "/refine?field=Nope&rel=1e-3")
	if nf.status != 404 {
		t.Fatalf("unknown field status %d", nf.status)
	}
	wantTrace[nf.traceID] = 404
	// 504: a stalled store outlasting the request deadline.
	stall.stall()
	dl := doTraced(t, ts, "/refine?field=Jx&rel=1e-5&timeout=100ms")
	if dl.status != 504 || dl.detail != "deadline" {
		t.Fatalf("deadline refine: status %d detail %q", dl.status, dl.detail)
	}
	wantTrace[dl.traceID] = 504
	// Drain the orphaned flight the deadline left behind (its fetch is still
	// parked at the gate): release the stall and let a healthy refine warm
	// the cache through the 1e-5 depth, so the next scenario's deeper refine
	// must enter the store again rather than coalesce.
	stall.unstall()
	warm := doTraced(t, ts, "/refine?field=Jx&rel=1e-5")
	if warm.status != 200 {
		t.Fatalf("warm refine status %d", warm.status)
	}
	wantTrace[warm.traceID] = 200
	// 503 shed: a stalled request holds the only inflight slot; the next
	// arrival is shed immediately.
	stall.stall()
	entered := stall.entered.Load()
	heldDone := make(chan tracedResult, 1)
	go func() { heldDone <- doTraced(t, ts, "/refine?field=Jx&rel=1e-6") }()
	waitForCond(t, "held refine to reach the store", func() bool { return stall.entered.Load() > entered })
	shed := doTraced(t, ts, "/refine?field=Jx&rel=1e-6")
	if shed.status != 503 || shed.detail != "shed" {
		t.Fatalf("shed refine: status %d detail %q", shed.status, shed.detail)
	}
	wantTrace[shed.traceID] = 503
	stall.unstall()
	held := <-heldDone
	if held.status != 200 {
		t.Fatalf("held refine finished with %d", held.status)
	}
	wantTrace[held.traceID] = 200
	// 499: the client walks away mid-refine.
	stall.stall()
	entered = stall.entered.Load()
	cctx, ccancel := context.WithCancel(context.Background())
	cancelErr := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(cctx, "GET", ts.URL+"/refine?field=Jx&rel=1e-7", nil)
		_, err := http.DefaultClient.Do(req)
		cancelErr <- err
	}()
	waitForCond(t, "doomed refine to reach the store", func() bool { return stall.entered.Load() > entered })
	ccancel()
	if err := <-cancelErr; err == nil {
		t.Fatal("cancelled client request reported success")
	}
	waitForCond(t, "the 499 access line", func() bool { return len(logBuf.lines(t)) == 7 })
	stall.unstall()

	lines := logBuf.lines(t)
	if len(lines) != 7 {
		t.Fatalf("%d access lines for 7 requests:\n%+v", len(lines), lines)
	}
	statuses := map[int]int{}
	outcomes := map[string]int{}
	for _, ln := range lines {
		status := int(ln["status"].(float64))
		statuses[status]++
		if o, _ := ln["outcome"].(string); o != "" {
			outcomes[o]++
		}
		id, _ := ln["trace_id"].(string)
		if len(id) != 32 {
			t.Errorf("line has malformed trace_id %q: %+v", id, ln)
		}
		if wantStatus, known := wantTrace[id]; known && wantStatus != status {
			t.Errorf("trace %s logged status %d, response header promised %d", id, status, wantStatus)
		}
		for _, key := range []string{"field", "tolerance", "bytes_fetched", "cache_hits", "degraded", "duration_seconds", "endpoint", "method"} {
			if _, present := ln[key]; !present {
				t.Errorf("line missing %s: %+v", key, ln)
			}
		}
	}
	want := map[int]int{200: 3, 404: 1, 503: 1, 504: 1, 499: 1}
	for status, n := range want {
		if statuses[status] != n {
			t.Errorf("status %d logged %d times, want %d (all: %v)", status, statuses[status], n, statuses)
		}
	}
	for _, o := range []string{"shed", "deadline", "client_gone", "not_found"} {
		if outcomes[o] != 1 {
			t.Errorf("outcome %q logged %d times, want 1 (all: %v)", o, outcomes[o], outcomes)
		}
	}
	// The healthy line carries the fetch accounting.
	for _, ln := range lines {
		if id, _ := ln["trace_id"].(string); id == ok.traceID {
			if ln["bytes_fetched"].(float64) <= 0 {
				t.Errorf("healthy line bytes_fetched = %v", ln["bytes_fetched"])
			}
			if ln["field"] != "Jx" {
				t.Errorf("healthy line field = %v", ln["field"])
			}
		}
	}
}

// TestAccessLogBreakerOutcome pins the breaker failure taxonomy in the
// log: an upstream fault line, then a breaker_open line once the circuit
// trips.
func TestAccessLogBreakerOutcome(t *testing.T) {
	c := buildCompressed(t, "Jx")
	flaky := &flakySource{inner: c}
	flaky.failing.Store(true)
	logBuf := &logBuffer{}
	_, ts, _ := newChaosServer(t, serverConfig{
		CacheBytes:      64 << 20,
		RequestTimeout:  5 * time.Second,
		BreakerFailures: 3,
		BreakerCooldown: time.Hour,
		AccessLog:       logBuf,
	}, &c.Header, flaky)

	// The outage yields 502/upstream until enough failures trip the circuit
	// (a single refine can record several failed plane reads), after which
	// the tier fast-fails with 503/breaker_open.
	requests := 0
	sawUpstream := false
	for ; requests < 10; requests++ {
		res := doTraced(t, ts, "/refine?field=Jx&rel=1e-3")
		if res.status == 502 && res.detail == "upstream" {
			sawUpstream = true
			continue
		}
		if res.status == 503 && res.detail == "breaker_open" {
			requests++
			break
		}
		t.Fatalf("outage refine %d: status %d detail %q", requests, res.status, res.detail)
	}
	if !sawUpstream {
		t.Fatal("breaker tripped before any upstream failure surfaced")
	}
	lines := logBuf.lines(t)
	if len(lines) != requests {
		t.Fatalf("%d lines for %d requests", len(lines), requests)
	}
	for i, ln := range lines[:len(lines)-1] {
		if ln["outcome"] != "upstream" {
			t.Fatalf("line %d outcome = %v, want upstream", i, ln["outcome"])
		}
	}
	if last := lines[len(lines)-1]; last["outcome"] != "breaker_open" || last["status"].(float64) != 503 {
		t.Fatalf("final line = %+v, want 503 breaker_open", last)
	}
}

// TestTraceparentPropagationAndTraceStore round-trips a caller-supplied
// traceparent: the response continues the caller's trace, and the span
// tree retained at /debug/obs/trace shows the serving stages nested inside
// the request, each stage span inside the request's interval.
func TestTraceparentPropagationAndTraceStore(t *testing.T) {
	srv, o := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest("GET", ts.URL+"/refine?field=Jx&rel=1e-4", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+callerTrace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("refine status %d", resp.StatusCode)
	}
	tc, ok := obs.ParseTraceParent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("bad response traceparent %q", resp.Header.Get("traceparent"))
	}
	if tc.TraceID != callerTrace {
		t.Fatalf("response trace id %s, want caller's %s", tc.TraceID, callerTrace)
	}
	if tc.SpanID == "00f067aa0ba902b7" {
		t.Fatal("response span id should be the server's root span, not the caller's")
	}

	rec, found := o.Requests.Get(callerTrace)
	if !found {
		t.Fatal("request trace not retained")
	}
	if rec.Status != 200 || rec.Name != "refine" {
		t.Fatalf("retained record %+v", rec)
	}
	names := map[string]bool{}
	var rootStart, rootEnd int64
	for _, sp := range rec.Spans {
		names[sp.Name] = true
		if sp.Name == "http.refine" {
			rootStart, rootEnd = sp.StartNs, sp.StartNs+sp.DurNs
		}
	}
	for _, wantSpan := range []string{"http.refine", "session.refine", "session.fetch_level", "servecache.get", "session.decode", "session.recompose"} {
		if !names[wantSpan] {
			t.Errorf("span tree missing %q (have %v)", wantSpan, names)
		}
	}
	for _, sp := range rec.Spans {
		if sp.TraceID != callerTrace {
			t.Errorf("span %s trace id %q", sp.Name, sp.TraceID)
		}
		if sp.StartNs < rootStart || sp.StartNs+sp.DurNs > rootEnd {
			t.Errorf("span %s escapes the request interval", sp.Name)
		}
		if sp.DurNs > rec.DurNs {
			t.Errorf("span %s (%dns) longer than the request (%dns)", sp.Name, sp.DurNs, rec.DurNs)
		}
	}

	// The span tree is served over HTTP, and the slowest table knows the
	// request.
	var served obs.RequestRecord
	getJSON(t, ts, "/debug/obs/trace?id="+callerTrace, &served)
	if served.TraceID != callerTrace || len(served.Spans) != len(rec.Spans) {
		t.Fatalf("served record %s/%d spans, want %s/%d", served.TraceID, len(served.Spans), callerTrace, len(rec.Spans))
	}
	var snap obs.DebugSnapshot
	getJSON(t, ts, "/debug/obs", &snap)
	found = false
	for _, s := range snap.Slowest {
		if s.TraceID == callerTrace {
			found = true
		}
	}
	if !found {
		t.Fatalf("slowest table misses the request: %+v", snap.Slowest)
	}
}

// TestMetricsPromFormat asserts /metrics?format=prom emits Prometheus text
// with the serving counters, histogram, a trace exemplar, and the runtime
// health gauges, while the default /metrics stays JSON.
func TestMetricsPromFormat(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	res := doTraced(t, ts, "/refine?field=Jx&rel=1e-4")
	if res.status != 200 {
		t.Fatalf("refine status %d", res.status)
	}
	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prom content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE serve_refines counter\nserve_refines 1\n",
		"# TYPE serve_refine_seconds histogram\n",
		`serve_refine_seconds_bucket{le="+Inf"} 1`,
		"serve_refine_seconds_count 1",
		fmt.Sprintf(`# {trace_id=%q}`, res.traceID),
		"# TYPE runtime_goroutines gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom output missing %q", want)
		}
	}
	// The default /metrics stays JSON.
	var js map[string]any
	getJSON(t, ts, "/metrics", &js)
	if _, present := js["counters"]; !present {
		t.Fatal("JSON /metrics lost its shape")
	}
}

// TestSLOCounters pins the refine SLO accounting: successes within the
// objective count good, anything else only total, and a disabled objective
// counts nothing.
func TestSLOCounters(t *testing.T) {
	c := buildCompressed(t, "Jx")
	_, ts, o := newChaosServer(t, serverConfig{
		CacheBytes:     64 << 20,
		RequestTimeout: 5 * time.Second,
		SLOLatency:     time.Minute,
	}, &c.Header, c)
	if res := doTraced(t, ts, "/refine?field=Jx&rel=1e-3"); res.status != 200 {
		t.Fatalf("refine status %d", res.status)
	}
	if res := doTraced(t, ts, "/refine?field=Nope&rel=1e-3"); res.status != 404 {
		t.Fatalf("bad-field refine status %d", res.status)
	}
	snap := o.Metrics.Snapshot()
	if snap.Counters["serve.slo_total"] != 2 || snap.Counters["serve.slo_good"] != 1 {
		t.Fatalf("slo good/total = %d/%d, want 1/2",
			snap.Counters["serve.slo_good"], snap.Counters["serve.slo_total"])
	}

	// An unreachable objective: success that still misses the target.
	c2 := buildCompressed(t, "Ex")
	_, ts2, o2 := newChaosServer(t, serverConfig{
		CacheBytes:     64 << 20,
		RequestTimeout: 5 * time.Second,
		SLOLatency:     time.Nanosecond,
	}, &c2.Header, c2)
	if res := doTraced(t, ts2, "/refine?field=Ex&rel=1e-3"); res.status != 200 {
		t.Fatalf("refine status %d", res.status)
	}
	snap = o2.Metrics.Snapshot()
	if snap.Counters["serve.slo_total"] != 1 || snap.Counters["serve.slo_good"] != 0 {
		t.Fatalf("slo good/total = %d/%d, want 0/1",
			snap.Counters["serve.slo_good"], snap.Counters["serve.slo_total"])
	}

	// A zero objective disables the accounting entirely.
	c3 := buildCompressed(t, "Bx")
	_, ts3, o3 := newChaosServer(t, serverConfig{
		CacheBytes:     64 << 20,
		RequestTimeout: 5 * time.Second,
	}, &c3.Header, c3)
	if res := doTraced(t, ts3, "/refine?field=Bx&rel=1e-3"); res.status != 200 {
		t.Fatalf("refine status %d", res.status)
	}
	if n := o3.Metrics.Snapshot().Counters["serve.slo_total"]; n != 0 {
		t.Fatalf("disabled SLO counted %d requests", n)
	}
}
