// Command serve exposes progressive retrieval over HTTP for many
// concurrent analysts — the paper's core usage pattern (§II-A) at serving
// scale. Every refine request runs its own core.Session, but all sessions
// share one servecache.Cache, so concurrent refinements of the same field
// deduplicate store reads and lossless decompression (singleflight) and
// warm requests are served from memory within the byte budget.
//
// Usage:
//
//	serve -in jx.pmgd[,ex.pmgd...] [-tiered dir,...] [-raw jx.field,...]
//	      [-addr localhost:8080]
//	      [-role node|router] [-shard-map map.json]
//	      [-cache-bytes 268435456] [-retries 8]
//	      [-request-timeout 30s] [-drain-timeout 10s]
//	      [-max-inflight 0] [-max-queue 0]
//	      [-breaker-failures 5] [-breaker-cooldown 2s]
//	      [-access-log path|stdout|stderr] [-log-level info] [-slo-latency 1s]
//	      [-metrics-out metrics.json] [-trace-out trace.json] [-debug-addr addr]
//
// Raw .field inputs are probed at startup: every registered progressive
// codec backend is tried against the field (core.ProbeBackends) and the
// field is refactored and served under the backend whose measured retrieval
// cost is lowest — the per-field codec selection recorded by
// `compare -probe -bench-out BENCH_codec.json`.
//
// Endpoints:
//
//	GET /fields                      — names of the served fields
//	GET /open?field=Jx               — header summary of one field
//	GET /refine?field=Jx&rel=1e-4    — refine to a tolerance (or abs=),
//	                                   returns plan, bytes, checksum; a
//	                                   timeout= parameter caps the request
//	                                   deadline below -request-timeout
//	GET /metrics                     — live metrics snapshot JSON
//	                                   (?format=prom for Prometheus text)
//	GET /healthz                     — liveness probe (process is up)
//	GET /readyz                      — readiness probe (fields probed
//	                                   readable at startup, not draining)
//	GET /debug/obs                   — metrics + stage table + slowest requests
//	GET /debug/obs/trace?id=...      — one retained request's span tree
//
// Every API request is traced: an inbound W3C traceparent header is
// honoured (a fresh trace is minted otherwise), the response carries the
// traceparent naming the server's root span, stage spans from admission
// through cache, storage and decode record into a per-request span tree
// retained for /debug/obs/trace, and -access-log writes one structured
// JSON line per request carrying the same trace id.
//
// The serving tier is hardened for production failure modes: every refine
// carries a deadline that propagates through the session, cache singleflight
// and storage retry loop; an admission controller bounds concurrent refines
// and sheds overload with 503 + Retry-After; a per-field circuit breaker
// fails fast when a field's store is persistently down; and SIGINT/SIGTERM
// drain gracefully — readiness flips first, in-flight requests finish,
// then handles close.
//
// The serving tier also scales horizontally as a static shard
// (internal/shard): `-role node` additionally exposes the internal /planes
// endpoints (decompressed plane bitsets, headers, field list) backed by the
// node's own cache, and `-role router -shard-map map.json` serves the
// public API with no local artifacts at all — fields are discovered from
// the shard, and every cache miss is routed to the plane's replica set by
// consistent hashing, with per-node retry, circuit breaking and failover.
// The router's shared cache singleflight collapses concurrent sessions'
// misses into one network fetch per plane.
//
// The standard observability flags behave as in cmd/mgard: -metrics-out
// and -trace-out write snapshots on shutdown (SIGINT/SIGTERM), -debug-addr
// serves expvar + pprof + /debug/obs alongside the API.
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"pmgard/internal/bufpool"
	"pmgard/internal/core"
	"pmgard/internal/fieldio"
	"pmgard/internal/grid"
	"pmgard/internal/obs"
	"pmgard/internal/resilience"
	"pmgard/internal/servecache"
	"pmgard/internal/shard"
	"pmgard/internal/storage"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "listen address for the API")
	in := fs.String("in", "", "comma-separated .pmgd files to serve")
	tiered := fs.String("tiered", "", "comma-separated tiered-store directories to serve")
	raw := fs.String("raw", "", "comma-separated raw .field files to probe, refactor under the winning codec backend, and serve")
	role := fs.String("role", "", "shard tier role: \"node\" also exposes the internal /planes endpoints, \"router\" serves fields fetched from a shard of nodes (requires -shard-map)")
	shardMap := fs.String("shard-map", "", "shard map JSON file describing the node set (router role)")
	cacheBytes := fs.Int64("cache-bytes", 256<<20, "shared plane-cache budget in decompressed bytes (0 = unbounded)")
	retries := fs.Int("retries", 0, "wrap stores in the retry/backoff layer with this attempt cap (0 = no retry layer)")
	requestTimeout := fs.Duration("request-timeout", 30*time.Second, "per-refine deadline propagated through fetch and retry (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "shutdown grace period for in-flight requests")
	maxInflight := fs.Int("max-inflight", 0, "max concurrent refines before queueing (0 = unlimited)")
	maxQueue := fs.Int("max-queue", 0, "max refines waiting for an inflight slot before shedding with 503")
	breakerFailures := fs.Int("breaker-failures", 5, "consecutive store failures that open a field's circuit breaker (0 = no breaker)")
	breakerCooldown := fs.Duration("breaker-cooldown", 2*time.Second, "open-state cooldown before the breaker probes the store again")
	accessLog := fs.String("access-log", "", "structured JSON access log destination: a file path, \"stdout\" or \"stderr\" (empty = disabled)")
	logLevel := fs.String("log-level", "info", "minimum access-log level: debug, info, warn or error")
	sloLatency := fs.Duration("slo-latency", time.Second, "refine latency objective for the serve.slo_good/serve.slo_total counters (0 disables SLO accounting)")
	var of obs.Flags
	of.Register(fs)
	fs.Parse(args)
	switch *role {
	case "", "node", "router":
	default:
		return fmt.Errorf("bad -role %q (want node or router)", *role)
	}
	if *role == "router" {
		if *shardMap == "" {
			return fmt.Errorf("-role router requires -shard-map")
		}
		if *in != "" || *tiered != "" || *raw != "" {
			return fmt.Errorf("-role router serves the shard's fields; it takes no -in/-tiered/-raw")
		}
	} else if *in == "" && *tiered == "" && *raw == "" {
		return fmt.Errorf("-in, -tiered, or -raw is required")
	}
	logDst, logClose, err := openAccessLog(*accessLog)
	if err != nil {
		return err
	}
	if logClose != nil {
		defer logClose()
	}
	o, err := of.Start(os.Stderr)
	if err != nil {
		return err
	}
	if o == nil {
		// The server always keeps a registry: /metrics serves it live even
		// when no snapshot file or debug endpoint was requested.
		o = obs.New()
	}

	srv, err := newServer(serverConfig{
		Role:            *role,
		CacheBytes:      *cacheBytes,
		Retries:         *retries,
		RequestTimeout:  *requestTimeout,
		MaxInflight:     *maxInflight,
		MaxQueue:        *maxQueue,
		BreakerFailures: *breakerFailures,
		BreakerCooldown: *breakerCooldown,
		AccessLog:       logDst,
		LogLevel:        parseLogLevel(*logLevel),
		SLOLatency:      *sloLatency,
		Obs:             o,
	})
	if err != nil {
		return err
	}
	defer srv.close()
	for _, path := range splitList(*in) {
		if err := srv.addFile(path); err != nil {
			return err
		}
	}
	for _, dir := range splitList(*tiered) {
		if err := srv.addTiered(dir); err != nil {
			return err
		}
	}
	for _, path := range splitList(*raw) {
		backend, err := srv.addRaw(path)
		if err != nil {
			return err
		}
		fmt.Printf("probed %s: serving under the %s backend\n", path, backend)
	}
	if *role == "router" {
		m, err := shard.LoadMap(*shardMap)
		if err != nil {
			return err
		}
		if err := srv.initRouter(context.Background(), m); err != nil {
			return err
		}
		fmt.Printf("routing %d fields over %d nodes (replication %d)\n",
			len(srv.names), len(m.Nodes), m.Replication)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	httpSrv := &http.Server{Handler: srv.handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Printf("serving %s on http://%s (cache budget %d bytes)\n",
		strings.Join(srv.names, ", "), ln.Addr(), *cacheBytes)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("received %v, draining\n", s)
	}
	drainAndShutdown(srv, httpSrv, *drainTimeout)
	return of.Finish(o)
}

// drainAndShutdown performs the graceful exit sequence: readiness flips to
// 503 first (load balancers stop routing new work), in-flight requests get
// up to drainTimeout to finish via http.Server.Shutdown, and only then are
// the store handles released.
func drainAndShutdown(srv *server, httpSrv *http.Server, drainTimeout time.Duration) {
	srv.beginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		// The grace period expired with requests still running; cut them off
		// rather than hang shutdown forever.
		httpSrv.Close()
	}
	srv.close()
}

// openAccessLog resolves the -access-log flag: "stdout"/"stderr" write to
// the process streams, anything else is a file path opened for append, and
// "" disables the access log entirely.
func openAccessLog(dst string) (io.Writer, func() error, error) {
	switch dst {
	case "":
		return nil, nil, nil
	case "stdout":
		return os.Stdout, nil, nil
	case "stderr":
		return os.Stderr, nil, nil
	}
	f, err := os.OpenFile(dst, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("access log %s: %w", dst, err)
	}
	return f, f.Close, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// fieldHandle is one served field: its header, the (possibly retry- and
// breaker-wrapped) segment source, and the handle to release on shutdown.
type fieldHandle struct {
	header *core.Header
	src    core.SegmentSource
	close  func() error
	// store is the validating fetch+decompress path over src, shared with
	// the node role's /planes endpoint so router traffic and local refine
	// traffic fill the same cache entries. nil for router-backed fields.
	store *core.PlaneStore
	// planes, when non-nil, replaces the store fetch path entirely: the
	// router role fills cache misses from remote nodes through it.
	planes servecache.SourceCtx
	// breaker is the field's circuit breaker, nil when disabled.
	breaker *resilience.Breaker
	// probeErr is the startup readiness probe result: the error from
	// reading the field's first segment when it was registered.
	probeErr error
}

// serverConfig configures a server independently of flag parsing so tests
// can construct one directly.
type serverConfig struct {
	// Role is the shard tier role: "" (standalone), "node" (also serve the
	// internal /planes endpoints), or "router" (serve fields fetched from a
	// shard of nodes; see initRouter).
	Role string
	// CacheBytes is the shared cache budget (0 = unbounded).
	CacheBytes int64
	// Retries, when > 0, wraps every source in a storage.RetryingSource
	// with this attempt cap — below the cache, so retried fetches are
	// deduplicated too.
	Retries int
	// RequestTimeout bounds each refine request (0 = unbounded). Clients
	// may lower it per request with the timeout= query parameter but never
	// raise it.
	RequestTimeout time.Duration
	// MaxInflight bounds concurrent refine executions (0 = unlimited).
	MaxInflight int
	// MaxQueue bounds refines waiting for an inflight slot; overflow is
	// shed with 503 + Retry-After. Only meaningful with MaxInflight > 0.
	MaxQueue int
	// BreakerFailures is the consecutive-failure threshold that opens a
	// field's circuit breaker (0 disables breakers).
	BreakerFailures int
	// BreakerCooldown is the open-state cooldown before half-open probing;
	// 0 uses the resilience default.
	BreakerCooldown time.Duration
	// AccessLog, when non-nil, receives one structured JSON log line per
	// API request (nil disables access logging).
	AccessLog io.Writer
	// LogLevel is the minimum level for access log lines.
	LogLevel slog.Level
	// SLOLatency is the refine latency objective behind the serve.slo_good
	// and serve.slo_total counters (0 disables SLO accounting).
	SLOLatency time.Duration
	// Obs receives the server's telemetry; must be non-nil.
	Obs *obs.Obs
}

// server is the HTTP serving layer: a set of opened fields, the shared
// plane cache every request session consults, and the admission/drain
// state that protects the tier under overload and shutdown.
type server struct {
	cfg    serverConfig
	fields map[string]*fieldHandle
	names  []string
	cache  *servecache.Cache
	adm    *resilience.Admission
	o      *obs.Obs
	// router is the shard-tier client, non-nil only in the router role.
	router *shard.Router
	// logger emits the structured access log; nil disables it.
	logger *slog.Logger
	// draining is set when shutdown begins: /readyz flips to 503 and new
	// refines are rejected while in-flight ones finish.
	draining atomic.Bool
	// closeOnce guarantees store handles are released exactly once even if
	// close is reached from both the drain path and a deferred cleanup.
	closeOnce sync.Once
}

func newServer(cfg serverConfig) (*server, error) {
	if cfg.Obs == nil {
		return nil, fmt.Errorf("server needs an Obs (use obs.New())")
	}
	cache := servecache.New(cfg.CacheBytes)
	cache.Instrument(cfg.Obs)
	bufpool.Instrument(cfg.Obs)
	adm := resilience.NewAdmission(cfg.MaxInflight, cfg.MaxQueue)
	adm.Instrument(cfg.Obs, "serve")
	// A serving process always reports its own health: /metrics carries
	// runtime.* goroutine/heap/GC gauges alongside the pipeline metrics.
	cfg.Obs.Metrics.EnableRuntimeMetrics()
	var logger *slog.Logger
	if cfg.AccessLog != nil {
		logger = slog.New(slog.NewJSONHandler(cfg.AccessLog, &slog.HandlerOptions{Level: cfg.LogLevel}))
	}
	return &server{
		cfg:    cfg,
		fields: make(map[string]*fieldHandle),
		cache:  cache,
		adm:    adm,
		o:      cfg.Obs,
		logger: logger,
	}, nil
}

// add registers an opened field under its header's field name, layering the
// resilience stack: retries closest to the store, the circuit breaker above
// them (one tier outage costs one breaker failure, not one per attempt),
// and probing the first segment for the readiness report.
func (s *server) add(h *core.Header, src core.SegmentSource, closeFn func() error) error {
	if _, ok := s.fields[h.FieldName]; ok {
		return fmt.Errorf("duplicate field %q", h.FieldName)
	}
	if s.cfg.Retries > 0 {
		pol := storage.DefaultRetryPolicy()
		pol.MaxAttempts = s.cfg.Retries
		retrying := storage.NewRetryingSource(nil, src, pol)
		retrying.Instrument(s.o)
		src = retrying
	}
	fh := &fieldHandle{header: h, close: closeFn}
	if s.cfg.BreakerFailures > 0 {
		fh.breaker = resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: s.cfg.BreakerFailures,
			Cooldown:         s.cfg.BreakerCooldown,
		})
		fh.breaker.Instrument(s.o, h.FieldName)
		src = resilience.BreakerSource{Src: src, Breaker: fh.breaker}
	}
	fh.src = src
	store, err := core.NewPlaneStore(h, src)
	if err != nil {
		return fmt.Errorf("field %q: %w", h.FieldName, err)
	}
	fh.store = store
	if h.Planes > 0 && len(h.Levels) > 0 {
		_, fh.probeErr = src.Segment(0, 0)
	}
	s.fields[h.FieldName] = fh
	s.names = append(s.names, h.FieldName)
	return nil
}

// initRouter turns the server into the shard's public face: it discovers
// the shard's fields, fetches each header, and registers a remote-backed
// handle whose cache misses are fetched from the plane's replica set over
// HTTP. The shared cache's singleflight then collapses concurrent
// sessions' misses into one network fetch per plane.
func (s *server) initRouter(ctx context.Context, m *shard.Map) error {
	bf := s.cfg.BreakerFailures
	if bf == 0 {
		// serverConfig uses 0 = disabled; RouterConfig uses negative.
		bf = -1
	}
	r, err := shard.NewRouter(shard.RouterConfig{
		Map:             m,
		BreakerFailures: bf,
		BreakerCooldown: s.cfg.BreakerCooldown,
		Obs:             s.o,
	})
	if err != nil {
		return err
	}
	s.router = r
	names, err := r.Fields(ctx)
	if err != nil {
		return fmt.Errorf("discover shard fields: %w", err)
	}
	if len(names) == 0 {
		return fmt.Errorf("shard serves no fields")
	}
	for _, name := range names {
		if _, ok := s.fields[name]; ok {
			return fmt.Errorf("duplicate field %q", name)
		}
		h, err := r.Header(ctx, name)
		if err != nil {
			return err
		}
		fc := r.FieldClient(h)
		fh := &fieldHandle{header: h, planes: fc}
		if h.Planes > 0 && len(h.Levels) > 0 {
			// The same readiness discipline as local fields: probe the first
			// plane end to end (placement, node fetch, length validation).
			_, _, fh.probeErr = fc.FetchPlaneCtx(ctx,
				servecache.Key{Codec: h.Codec(), Field: cacheFieldID(h), Level: 0, Plane: 0})
		}
		s.fields[name] = fh
		s.names = append(s.names, name)
	}
	return nil
}

// cacheFieldID is the cache namespace of a served field — the same
// "<field>@<timestep>" a shared session derives, so /planes traffic, local
// refine sessions and router sessions all share one set of entries.
func cacheFieldID(h *core.Header) string {
	return fmt.Sprintf("%s@%d", h.FieldName, h.Timestep)
}

// PlaneField implements shard.NodeSource: the node role's /planes endpoint
// serves planes through the field's cache-backed validating store, so
// router traffic and node-local refine traffic deduplicate into the same
// cache entries and singleflight groups.
func (s *server) PlaneField(name string) (shard.NodeField, bool) {
	fh, ok := s.fields[name]
	if !ok || fh.store == nil {
		return shard.NodeField{}, false
	}
	h := fh.header
	return shard.NodeField{
		Header: h,
		Fetch: func(ctx context.Context, level, plane int) ([]byte, int64, error) {
			key := servecache.Key{Codec: h.Codec(), Field: cacheFieldID(h), Level: level, Plane: plane}
			raw, payload, _, err := s.cache.GetOrFetchFromCtx(ctx, key, fh.store)
			return raw, payload, err
		},
	}, true
}

// PlaneFields implements shard.NodeSource.
func (s *server) PlaneFields() []string {
	return s.names
}

func (s *server) addFile(path string) error {
	h, st, err := core.OpenFile(path)
	if err != nil {
		return err
	}
	return s.add(h, core.StoreSource{Store: st}, st.Close)
}

func (s *server) addTiered(dir string) error {
	h, st, err := core.OpenTiered(dir)
	if err != nil {
		return err
	}
	st.Instrument(s.o)
	return s.add(h, core.TieredSource{Store: st}, st.Close)
}

// addRaw probes a raw .field file against every registered codec backend,
// refactors it under the winner, and serves the in-memory artifact. Returns
// the selected backend ID.
func (s *server) addRaw(path string) (string, error) {
	meta, field, err := fieldio.Read(path)
	if err != nil {
		return "", err
	}
	cmp, err := core.ProbeBackends(field, core.DefaultConfig(), meta.Field, nil, nil)
	if err != nil {
		return "", err
	}
	cfg := core.DefaultConfig()
	cfg.Backend = cmp.Winner
	c, err := core.Compress(field, cfg, meta.Field, meta.Timestep)
	if err != nil {
		return "", err
	}
	return cmp.Winner, s.add(&c.Header, c, nil)
}

// beginDrain flips the server into draining mode: /readyz answers 503 and
// new refine requests are rejected so a load balancer stops routing here
// while in-flight work completes.
func (s *server) beginDrain() {
	s.draining.Store(true)
}

func (s *server) close() {
	s.closeOnce.Do(func() {
		for _, fh := range s.fields {
			if fh.close != nil {
				fh.close()
			}
		}
	})
}

// handler returns the full middleware-wrapped API handler: observability
// outermost (so recovery's 500s are traced and logged too), panic recovery
// inside it, routes at the core.
func (s *server) handler() http.Handler {
	return s.withObservability(s.withRecovery(s.mux()))
}

// mux returns the API routes.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/fields", s.handleFields)
	mux.HandleFunc("/open", s.handleOpen)
	mux.HandleFunc("/refine", s.handleRefine)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", s.handleReady)
	if s.cfg.Role == "node" {
		nh := shard.NewNodeHandler(s, s.o)
		mux.Handle("/planes", nh)
		mux.Handle("/planes/", nh)
	}
	mux.Handle("/debug/obs", obs.Handler(s.o))
	mux.Handle("/debug/obs/trace", obs.TraceHandler(s.o.Requests))
	return mux
}

// withRecovery converts a handler panic into a 500 plus a serve.panics
// count instead of killing the connection silently; http.ErrAbortHandler
// is re-raised because it is the sanctioned way to abort a response.
func (s *server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.o.Counter("serve.panics").Add(1)
				s.fail(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// handleReady is the readiness probe: 200 only when every field's first
// segment was readable when it was registered and the server is not
// draining. Distinct from /healthz, which only says the process is alive —
// a load balancer should route on /readyz and page on /healthz.
func (s *server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		s.failDetail(w, http.StatusServiceUnavailable, fmt.Errorf("draining"), "draining")
		return
	}
	for _, name := range s.names {
		if err := s.fields[name].probeErr; err != nil {
			s.failDetail(w, http.StatusServiceUnavailable,
				fmt.Errorf("field %q failed startup read probe: %v", name, err), "probe_failed")
			return
		}
	}
	fmt.Fprintln(w, "ready")
}

// lookup resolves the field query parameter; with a single served field the
// parameter is optional.
func (s *server) lookup(r *http.Request) (*fieldHandle, string, error) {
	name := r.URL.Query().Get("field")
	if name == "" {
		if len(s.names) == 1 {
			name = s.names[0]
		} else {
			return nil, "", fmt.Errorf("field parameter required (serving %s)", strings.Join(s.names, ", "))
		}
	}
	fh, ok := s.fields[name]
	if !ok {
		return nil, name, fmt.Errorf("unknown field %q (serving %s)", name, strings.Join(s.names, ", "))
	}
	return fh, name, nil
}

func (s *server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The response is already partially written, so no status rewrite is
		// possible — count and log the failure instead of dropping it.
		s.o.Counter("serve.errors").Add(1)
		fmt.Fprintf(os.Stderr, "serve: encode response: %v\n", err)
	}
}

// errorResponse is the JSON error body: machine-readable status and a
// detail tag ("deadline", "shed", "breaker_open", "upstream", ...) so
// clients can branch on the failure mode without parsing prose.
type errorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
	Detail string `json:"detail,omitempty"`
}

func (s *server) fail(w http.ResponseWriter, code int, err error) {
	s.failDetail(w, code, err, "")
}

// failDetail writes a JSON error body with the given status and detail tag.
// 503s carry Retry-After so well-behaved clients back off instead of
// hammering an overloaded or draining server; callers that know how long
// the condition will last (failRefine) set the header first and the
// 1-second default only fills in when they have not.
func (s *server) failDetail(w http.ResponseWriter, code int, err error, detail string) {
	s.o.Counter("serve.errors").Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	if code == http.StatusServiceUnavailable && w.Header().Get("Retry-After") == "" {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if eerr := enc.Encode(errorResponse{Error: err.Error(), Status: code, Detail: detail}); eerr != nil {
		fmt.Fprintf(os.Stderr, "serve: encode error response: %v\n", eerr)
	}
}

func (s *server) handleFields(w http.ResponseWriter, _ *http.Request) {
	s.o.Counter("serve.requests").Add(1)
	s.writeJSON(w, map[string]any{"fields": s.names})
}

// openResponse is the /open document: the header facts a client needs to
// plan refinements without fetching payload.
type openResponse struct {
	Field      string  `json:"field"`
	Timestep   int     `json:"timestep"`
	Dims       []int   `json:"dims"`
	Levels     int     `json:"levels"`
	Planes     int     `json:"planes"`
	Codec      string  `json:"codec"`
	Backend    string  `json:"backend"`
	ValueRange float64 `json:"value_range"`
	TotalBytes int64   `json:"total_bytes"`
}

func (s *server) handleOpen(w http.ResponseWriter, r *http.Request) {
	s.o.Counter("serve.requests").Add(1)
	fh, _, err := s.lookup(r)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	h := fh.header
	s.writeJSON(w, openResponse{
		Field:      h.FieldName,
		Timestep:   h.Timestep,
		Dims:       h.Dims,
		Levels:     len(h.Levels),
		Planes:     h.Planes,
		Codec:      h.CodecName,
		Backend:    h.Codec(),
		ValueRange: h.ValueRange,
		TotalBytes: h.TotalBytes(),
	})
}

// refineResponse is the /refine document: the executed plan and enough
// derived facts (checksum, byte counts) for clients to verify agreement
// across requests without shipping the reconstruction itself.
type refineResponse struct {
	Field          string  `json:"field"`
	Tolerance      float64 `json:"tolerance"`
	Planes         []int   `json:"planes"`
	BytesFetched   int64   `json:"bytes_fetched"`
	EstimatedError float64 `json:"estimated_error"`
	Degraded       bool    `json:"degraded"`
	Checksum       string  `json:"checksum"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// statusClientClosedRequest is the nginx-convention status for a request
// whose client went away before the response was ready.
const statusClientClosedRequest = 499

func (s *server) handleRefine(w http.ResponseWriter, r *http.Request) {
	s.o.Counter("serve.requests").Add(1)
	ar := accessFrom(r.Context())
	if s.draining.Load() {
		ar.setOutcome("draining")
		s.failDetail(w, http.StatusServiceUnavailable, fmt.Errorf("server is draining"), "draining")
		return
	}
	fh, _, err := s.lookup(r)
	if err != nil {
		ar.setOutcome("not_found")
		s.fail(w, http.StatusNotFound, err)
		return
	}
	h := fh.header
	if ar != nil {
		ar.field = h.FieldName
	}
	tol, err := parseTolerance(r, h)
	if err != nil {
		ar.setOutcome("bad_request")
		s.failDetail(w, http.StatusBadRequest, err, "bad_tolerance")
		return
	}
	if ar != nil {
		ar.tol = tol
	}
	timeout, err := requestDeadline(r, s.cfg.RequestTimeout)
	if err != nil {
		ar.setOutcome("bad_request")
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	asp := obs.SpanFromContext(ctx).Child("serve.admission")
	release, err := s.adm.Acquire(ctx)
	asp.Fail(err)
	asp.End()
	if err != nil {
		s.failRefine(w, ar, fh, err)
		return
	}
	defer release()

	start := time.Now()
	sess, err := core.NewSharedSession(h, core.SharedSource{Src: fh.src, Cache: s.cache, Planes: fh.planes})
	if err != nil {
		ar.setOutcome("internal")
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	sess.Instrument(s.o)
	rec, plan, deg, err := sess.RefineCtx(ctx, h.TheoryEstimator(), tol)
	if ar != nil {
		ar.bytes = sess.BytesFetched()
		ar.hits = sess.CacheHits()
	}
	if err != nil {
		s.failRefine(w, ar, fh, fmt.Errorf("refine: %w", err))
		return
	}
	elapsed := time.Since(start).Seconds()
	if ar != nil {
		ar.degraded = deg != nil
	}
	tc, _ := obs.TraceFromContext(ctx)
	s.o.Counter("serve.refines").Add(1)
	s.o.Histogram("serve.refine_seconds", obs.LatencyBuckets()).ObserveExemplar(elapsed, tc.TraceID)
	s.writeJSON(w, refineResponse{
		Field:          h.FieldName,
		Tolerance:      tol,
		Planes:         plan.Planes,
		BytesFetched:   sess.BytesFetched(),
		EstimatedError: plan.EstimatedError,
		Degraded:       deg != nil,
		Checksum:       tensorChecksum(rec),
		ElapsedSeconds: elapsed,
	})
}

// failRefine maps a refine failure to its transport meaning: the request's
// own deadline expiring is a 504, overload shedding and an open breaker are
// retryable 503s, a client disconnect is 499, and only genuine upstream
// store faults surface as 502. The chosen tag also lands on the access
// record, so the log line names the failure mode, not just the status.
//
// Retryable 503s derive their Retry-After from the actual condition
// instead of a constant: an open breaker reports the cooldown remaining
// (the field's own breaker, or the soonest node breaker in the router
// role), and shedding scales with queue pressure — each full
// MaxInflight-worth of queued refines adds a second, so a deeper backlog
// pushes retries further out.
func (s *server) failRefine(w http.ResponseWriter, ar *accessRecord, fh *fieldHandle, err error) {
	var code int
	var detail string
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		code, detail = http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, resilience.ErrShed):
		code, detail = http.StatusServiceUnavailable, "shed"
		wait := int64(1)
		if s.cfg.MaxInflight > 0 {
			wait += s.adm.Stats().Queued / int64(s.cfg.MaxInflight)
		}
		w.Header().Set("Retry-After", strconv.FormatInt(wait, 10))
	case errors.Is(err, resilience.ErrOpen):
		code, detail = http.StatusServiceUnavailable, "breaker_open"
		var wait time.Duration
		if fh != nil && fh.breaker != nil {
			wait = fh.breaker.RetryAfter()
		} else if s.router != nil {
			wait = s.router.RetryAfter()
		}
		if wait > 0 {
			w.Header().Set("Retry-After", retryAfterSeconds(wait))
		}
	case errors.Is(err, context.Canceled):
		code, detail = statusClientClosedRequest, "client_gone"
	default:
		code, detail = http.StatusBadGateway, "upstream"
	}
	ar.setOutcome(detail)
	s.failDetail(w, code, err, detail)
}

// retryAfterSeconds formats a cooldown remaining as a Retry-After value:
// whole seconds rounded up, never below 1 (a 0 would invite an immediate
// retry against a still-open breaker).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// requestDeadline resolves the effective refine deadline: the server's
// -request-timeout, capped lower (never raised) by a timeout= query
// parameter in Go duration syntax.
func requestDeadline(r *http.Request, serverTimeout time.Duration) (time.Duration, error) {
	v := r.URL.Query().Get("timeout")
	if v == "" {
		return serverTimeout, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad timeout %q (want a positive Go duration like 500ms)", v)
	}
	if serverTimeout > 0 && d > serverTimeout {
		return serverTimeout, nil
	}
	return d, nil
}

// parseTolerance resolves the abs= or rel= tolerance parameter. Only
// finite positive values are accepted: strconv.ParseFloat happily returns
// NaN and ±Inf for "NaN"/"+Inf", and both slip past a plain `<= 0` check
// (every comparison with NaN is false) — a NaN tolerance then poisons the
// planner's error comparisons into refining nothing or everything.
func parseTolerance(r *http.Request, h *core.Header) (float64, error) {
	q := r.URL.Query()
	if v := q.Get("abs"); v != "" {
		tol, err := strconv.ParseFloat(v, 64)
		if err != nil || math.IsNaN(tol) || math.IsInf(tol, 0) || tol <= 0 {
			return 0, fmt.Errorf("bad abs tolerance %q (want a finite positive number)", v)
		}
		return tol, nil
	}
	if v := q.Get("rel"); v != "" {
		rel, err := strconv.ParseFloat(v, 64)
		if err != nil || math.IsNaN(rel) || math.IsInf(rel, 0) || rel <= 0 {
			return 0, fmt.Errorf("bad rel tolerance %q (want a finite positive number)", v)
		}
		return h.AbsTolerance(rel), nil
	}
	return 0, fmt.Errorf("rel or abs tolerance parameter required")
}

// tensorChecksum fingerprints a reconstruction (CRC32 over the little-
// endian float64 payload) so clients can assert two refinements agreed.
func tensorChecksum(t *grid.Tensor) string {
	h := crc32.NewIEEE()
	var buf [8]byte
	for _, v := range t.Data() {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%08x", h.Sum32())
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.o.Counter("serve.requests").Add(1)
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", obs.PromContentType)
		s.o.Metrics.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.o.Metrics.WriteJSON(w)
}
