// Command serve exposes progressive retrieval over HTTP for many
// concurrent analysts — the paper's core usage pattern (§II-A) at serving
// scale. Every refine request runs its own core.Session, but all sessions
// share one servecache.Cache, so concurrent refinements of the same field
// deduplicate store reads and lossless decompression (singleflight) and
// warm requests are served from memory within the byte budget.
//
// Usage:
//
//	serve -in jx.pmgd[,ex.pmgd...] [-tiered dir,...] [-addr localhost:8080]
//	      [-cache-bytes 268435456] [-retries 8]
//	      [-metrics-out metrics.json] [-trace-out trace.json] [-debug-addr addr]
//
// Endpoints:
//
//	GET /fields                      — names of the served fields
//	GET /open?field=Jx               — header summary of one field
//	GET /refine?field=Jx&rel=1e-4    — refine to a tolerance (or abs=),
//	                                   returns plan, bytes, checksum
//	GET /metrics                     — live metrics snapshot JSON
//	GET /healthz                     — liveness probe
//
// The standard observability flags behave as in cmd/mgard: -metrics-out
// and -trace-out write snapshots on shutdown (SIGINT/SIGTERM), -debug-addr
// serves expvar + pprof + /debug/obs alongside the API.
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/crc32"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pmgard/internal/bufpool"
	"pmgard/internal/core"
	"pmgard/internal/grid"
	"pmgard/internal/obs"
	"pmgard/internal/servecache"
	"pmgard/internal/storage"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "listen address for the API")
	in := fs.String("in", "", "comma-separated .pmgd files to serve")
	tiered := fs.String("tiered", "", "comma-separated tiered-store directories to serve")
	cacheBytes := fs.Int64("cache-bytes", 256<<20, "shared plane-cache budget in decompressed bytes (0 = unbounded)")
	retries := fs.Int("retries", 0, "wrap stores in the retry/backoff layer with this attempt cap (0 = no retry layer)")
	var of obs.Flags
	of.Register(fs)
	fs.Parse(args)
	if *in == "" && *tiered == "" {
		return fmt.Errorf("-in or -tiered is required")
	}
	o, err := of.Start(os.Stderr)
	if err != nil {
		return err
	}
	if o == nil {
		// The server always keeps a registry: /metrics serves it live even
		// when no snapshot file or debug endpoint was requested.
		o = obs.New()
	}

	srv, err := newServer(serverConfig{
		CacheBytes: *cacheBytes,
		Retries:    *retries,
		Obs:        o,
	})
	if err != nil {
		return err
	}
	defer srv.close()
	for _, path := range splitList(*in) {
		if err := srv.addFile(path); err != nil {
			return err
		}
	}
	for _, dir := range splitList(*tiered) {
		if err := srv.addTiered(dir); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	httpSrv := &http.Server{Handler: srv.mux()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Printf("serving %s on http://%s (cache budget %d bytes)\n",
		strings.Join(srv.names, ", "), ln.Addr(), *cacheBytes)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("received %v, shutting down\n", s)
	}
	httpSrv.Close()
	return of.Finish(o)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// fieldHandle is one served field: its header, the (possibly retry-wrapped)
// segment source, and the handle to release on shutdown.
type fieldHandle struct {
	header *core.Header
	src    core.SegmentSource
	close  func() error
}

// serverConfig configures a server independently of flag parsing so tests
// can construct one directly.
type serverConfig struct {
	// CacheBytes is the shared cache budget (0 = unbounded).
	CacheBytes int64
	// Retries, when > 0, wraps every source in a storage.RetryingSource
	// with this attempt cap — below the cache, so retried fetches are
	// deduplicated too.
	Retries int
	// Obs receives the server's telemetry; must be non-nil.
	Obs *obs.Obs
}

// server is the HTTP serving layer: a set of opened fields and the shared
// plane cache every request session consults.
type server struct {
	cfg    serverConfig
	fields map[string]*fieldHandle
	names  []string
	cache  *servecache.Cache
	o      *obs.Obs
}

func newServer(cfg serverConfig) (*server, error) {
	if cfg.Obs == nil {
		return nil, fmt.Errorf("server needs an Obs (use obs.New())")
	}
	cache := servecache.New(cfg.CacheBytes)
	cache.Instrument(cfg.Obs)
	bufpool.Instrument(cfg.Obs)
	return &server{
		cfg:    cfg,
		fields: make(map[string]*fieldHandle),
		cache:  cache,
		o:      cfg.Obs,
	}, nil
}

// add registers an opened field under its header's field name, layering the
// retry source when configured.
func (s *server) add(h *core.Header, src core.SegmentSource, closeFn func() error) error {
	if _, ok := s.fields[h.FieldName]; ok {
		return fmt.Errorf("duplicate field %q", h.FieldName)
	}
	if s.cfg.Retries > 0 {
		pol := storage.DefaultRetryPolicy()
		pol.MaxAttempts = s.cfg.Retries
		retrying := storage.NewRetryingSource(nil, src, pol)
		retrying.Instrument(s.o)
		src = retrying
	}
	s.fields[h.FieldName] = &fieldHandle{header: h, src: src, close: closeFn}
	s.names = append(s.names, h.FieldName)
	return nil
}

func (s *server) addFile(path string) error {
	h, st, err := core.OpenFile(path)
	if err != nil {
		return err
	}
	return s.add(h, core.StoreSource{Store: st}, st.Close)
}

func (s *server) addTiered(dir string) error {
	h, st, err := core.OpenTiered(dir)
	if err != nil {
		return err
	}
	st.Instrument(s.o)
	return s.add(h, core.TieredSource{Store: st}, st.Close)
}

func (s *server) close() {
	for _, fh := range s.fields {
		if fh.close != nil {
			fh.close()
		}
	}
}

// mux returns the API routes.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/fields", s.handleFields)
	mux.HandleFunc("/open", s.handleOpen)
	mux.HandleFunc("/refine", s.handleRefine)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// lookup resolves the field query parameter; with a single served field the
// parameter is optional.
func (s *server) lookup(r *http.Request) (*fieldHandle, string, error) {
	name := r.URL.Query().Get("field")
	if name == "" {
		if len(s.names) == 1 {
			name = s.names[0]
		} else {
			return nil, "", fmt.Errorf("field parameter required (serving %s)", strings.Join(s.names, ", "))
		}
	}
	fh, ok := s.fields[name]
	if !ok {
		return nil, name, fmt.Errorf("unknown field %q (serving %s)", name, strings.Join(s.names, ", "))
	}
	return fh, name, nil
}

func (s *server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *server) fail(w http.ResponseWriter, code int, err error) {
	s.o.Counter("serve.errors").Add(1)
	http.Error(w, err.Error(), code)
}

func (s *server) handleFields(w http.ResponseWriter, _ *http.Request) {
	s.o.Counter("serve.requests").Add(1)
	s.writeJSON(w, map[string]any{"fields": s.names})
}

// openResponse is the /open document: the header facts a client needs to
// plan refinements without fetching payload.
type openResponse struct {
	Field      string  `json:"field"`
	Timestep   int     `json:"timestep"`
	Dims       []int   `json:"dims"`
	Levels     int     `json:"levels"`
	Planes     int     `json:"planes"`
	Codec      string  `json:"codec"`
	ValueRange float64 `json:"value_range"`
	TotalBytes int64   `json:"total_bytes"`
}

func (s *server) handleOpen(w http.ResponseWriter, r *http.Request) {
	s.o.Counter("serve.requests").Add(1)
	fh, _, err := s.lookup(r)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	h := fh.header
	s.writeJSON(w, openResponse{
		Field:      h.FieldName,
		Timestep:   h.Timestep,
		Dims:       h.Dims,
		Levels:     len(h.Levels),
		Planes:     h.Planes,
		Codec:      h.CodecName,
		ValueRange: h.ValueRange,
		TotalBytes: h.TotalBytes(),
	})
}

// refineResponse is the /refine document: the executed plan and enough
// derived facts (checksum, byte counts) for clients to verify agreement
// across requests without shipping the reconstruction itself.
type refineResponse struct {
	Field          string  `json:"field"`
	Tolerance      float64 `json:"tolerance"`
	Planes         []int   `json:"planes"`
	BytesFetched   int64   `json:"bytes_fetched"`
	EstimatedError float64 `json:"estimated_error"`
	Degraded       bool    `json:"degraded"`
	Checksum       string  `json:"checksum"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

func (s *server) handleRefine(w http.ResponseWriter, r *http.Request) {
	s.o.Counter("serve.requests").Add(1)
	fh, _, err := s.lookup(r)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	h := fh.header
	tol, err := parseTolerance(r, h)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	sess, err := core.NewSharedSession(h, core.SharedSource{Src: fh.src, Cache: s.cache})
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	sess.Instrument(s.o)
	rec, plan, deg, err := sess.Refine(h.TheoryEstimator(), tol)
	if err != nil {
		s.fail(w, http.StatusBadGateway, fmt.Errorf("refine: %w", err))
		return
	}
	elapsed := time.Since(start).Seconds()
	s.o.Counter("serve.refines").Add(1)
	s.o.Histogram("serve.refine_seconds", obs.LatencyBuckets()).Observe(elapsed)
	s.writeJSON(w, refineResponse{
		Field:          h.FieldName,
		Tolerance:      tol,
		Planes:         plan.Planes,
		BytesFetched:   sess.BytesFetched(),
		EstimatedError: plan.EstimatedError,
		Degraded:       deg != nil,
		Checksum:       tensorChecksum(rec),
		ElapsedSeconds: elapsed,
	})
}

func parseTolerance(r *http.Request, h *core.Header) (float64, error) {
	q := r.URL.Query()
	if v := q.Get("abs"); v != "" {
		tol, err := strconv.ParseFloat(v, 64)
		if err != nil || tol <= 0 {
			return 0, fmt.Errorf("bad abs tolerance %q", v)
		}
		return tol, nil
	}
	if v := q.Get("rel"); v != "" {
		rel, err := strconv.ParseFloat(v, 64)
		if err != nil || rel <= 0 {
			return 0, fmt.Errorf("bad rel tolerance %q", v)
		}
		return h.AbsTolerance(rel), nil
	}
	return 0, fmt.Errorf("rel or abs tolerance parameter required")
}

// tensorChecksum fingerprints a reconstruction (CRC32 over the little-
// endian float64 payload) so clients can assert two refinements agreed.
func tensorChecksum(t *grid.Tensor) string {
	h := crc32.NewIEEE()
	var buf [8]byte
	for _, v := range t.Data() {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%08x", h.Sum32())
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.o.Counter("serve.requests").Add(1)
	w.Header().Set("Content-Type", "application/json")
	s.o.Metrics.WriteJSON(w)
}
