// Request-scoped observability for the serving tier: W3C traceparent
// extraction/injection, a per-request span tree absorbed into the process
// tracer, one structured JSON access-log line per API request, and
// SLO good/total accounting for refines.
package main

import (
	"context"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"pmgard/internal/obs"
)

// accessRecord accumulates the per-request facts the access log line and
// the retained trace record report. Handlers deeper in the stack fill it in
// through the pointer the middleware stores in the request context.
type accessRecord struct {
	endpoint string
	field    string
	tol      float64
	bytes    int64
	hits     int64
	degraded bool
	// outcome is the failure-mode tag ("shed", "breaker_open", "deadline",
	// "client_gone", "draining", ...), empty for success.
	outcome string
}

type accessKey struct{}

// accessFrom returns the request's access record, nil outside the
// observability middleware (direct handler tests); setters must nil-check.
func accessFrom(ctx context.Context) *accessRecord {
	ar, _ := ctx.Value(accessKey{}).(*accessRecord)
	return ar
}

func (ar *accessRecord) setOutcome(tag string) {
	if ar != nil {
		ar.outcome = tag
	}
}

// statusWriter captures the status code a handler wrote so the middleware
// can log and trace it after the fact. An unset status means an implicit
// 200 from the first Write.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// infraPath reports whether a path is probe/scrape traffic that should stay
// out of the request trace store and access log: health probes fire every
// few seconds and would drown real requests in both.
func infraPath(path string) bool {
	switch path {
	case "/healthz", "/readyz", "/metrics":
		return true
	}
	return strings.HasPrefix(path, "/debug/")
}

// withObservability is the outermost middleware: it resolves the request's
// trace identity (inbound traceparent, or a freshly minted one), runs the
// request under a bounded per-request tracer whose root span parents every
// stage span recorded down the stack, injects the traceparent response
// header, and on completion absorbs the span tree into the process tracer,
// retains it for /debug/obs/trace, updates the refine SLO counters and
// emits exactly one access-log line.
//
// It wraps withRecovery, so a panicking handler still logs (as the 500 the
// recovery layer wrote) and still commits its spans.
func (s *server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if infraPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		tc, ok := obs.ParseTraceParent(r.Header.Get("traceparent"))
		if !ok {
			tc = obs.NewTraceContext()
		}
		// One bounded tracer per request keeps span trees isolated (and a
		// runaway request from evicting other requests' spans); drops still
		// surface in the shared obs.spans_dropped counter.
		tracer := obs.NewTracer(0)
		tracer.BindDroppedCounter(s.o.Counter("obs.spans_dropped"))
		endpoint := strings.TrimPrefix(r.URL.Path, "/")
		root := tracer.StartTrace("http."+endpoint, tc.TraceID)
		// The response names our root span as the parent, so a client that
		// continues the trace hangs its follow-up under this request.
		w.Header().Set("traceparent", obs.TraceContext{
			TraceID: tc.TraceID, SpanID: root.HexID(), Sampled: true,
		}.TraceParent())

		ar := &accessRecord{endpoint: endpoint}
		ctx := obs.ContextWithTrace(r.Context(), tc)
		ctx = obs.ContextWithSpan(ctx, root)
		ctx = context.WithValue(ctx, accessKey{}, ar)
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			// Runs even when the handler panics (including ErrAbortHandler,
			// which withRecovery re-raises): the request is still traced and
			// logged before the panic continues to net/http.
			s.finishRequest(r, tc, root, tracer, ar, sw.status, start)
		}()
		next.ServeHTTP(sw, r.WithContext(ctx))
	})
}

// finishRequest commits one finished request: root span status, span-tree
// absorption and retention, SLO accounting, access log line.
func (s *server) finishRequest(r *http.Request, tc obs.TraceContext, root *obs.Span, tracer *obs.Tracer, ar *accessRecord, status int, start time.Time) {
	dur := time.Since(start)
	if status == 0 {
		// The handler never wrote: net/http sends 200 on return, or the
		// connection died mid-handler (ErrAbortHandler).
		status = http.StatusOK
	}
	root.SetAttr("status", status)
	switch {
	case status == http.StatusGatewayTimeout:
		root.SetStatus(obs.StatusDeadline)
	case status == statusClientClosedRequest:
		root.SetStatus(obs.StatusCancelled)
	case status >= 400:
		root.SetStatus(obs.StatusError)
	}
	root.End()

	spans := tracer.Timeline()
	s.o.Trace.Absorb(spans)
	attrs := map[string]any{"status": status}
	if ar.field != "" {
		attrs["field"] = ar.field
	}
	if ar.tol > 0 {
		attrs["tolerance"] = ar.tol
	}
	if ar.outcome != "" {
		attrs["outcome"] = ar.outcome
	}
	s.o.Requests.Add(obs.RequestRecord{
		TraceID: tc.TraceID,
		Name:    ar.endpoint,
		Status:  status,
		StartNs: start.UnixNano(),
		DurNs:   dur.Nanoseconds(),
		Attrs:   attrs,
		Spans:   spans,
	})

	if ar.endpoint == "refine" && s.cfg.SLOLatency > 0 {
		// Availability and latency in one objective: a refine is good when
		// it succeeded within the latency target. Client disconnects (499)
		// are excluded entirely — the client gave up, the tier did not fail.
		if status != statusClientClosedRequest {
			s.o.Counter("serve.slo_total").Add(1)
			if status < 400 && dur <= s.cfg.SLOLatency {
				s.o.Counter("serve.slo_good").Add(1)
			}
		}
	}

	if s.logger != nil {
		level := slog.LevelInfo
		if status >= 500 {
			level = slog.LevelWarn
		}
		s.logger.LogAttrs(context.Background(), level, "request",
			slog.String("trace_id", tc.TraceID),
			slog.String("method", r.Method),
			slog.String("endpoint", ar.endpoint),
			slog.String("field", ar.field),
			slog.Float64("tolerance", ar.tol),
			slog.Int("status", status),
			slog.Int64("bytes_fetched", ar.bytes),
			slog.Int64("cache_hits", ar.hits),
			slog.Bool("degraded", ar.degraded),
			slog.String("outcome", ar.outcome),
			slog.Float64("duration_seconds", dur.Seconds()),
		)
	}
}

// parseLogLevel maps the -log-level flag to a slog level (default info).
func parseLogLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}
