package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pmgard/internal/leakcheck"
	"pmgard/internal/obs"
)

// TestGracefulDrain exercises the shutdown sequence end-to-end on a real
// listener: an in-flight refine completes with 200, requests arriving
// after drain begins get 503/draining, readiness flips before the listener
// closes, and store handles are released exactly once even when close is
// reached twice.
func TestGracefulDrain(t *testing.T) {
	base := leakcheck.Baseline()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		leakcheck.Check(t, base, 10*time.Second)
	})
	c := buildCompressed(t, "Jx")
	want := groundTruth(t, c, 1e-4)
	src := &stallSource{inner: c}
	o := obs.New()
	srv, err := newServer(serverConfig{CacheBytes: 64 << 20, RequestTimeout: 30 * time.Second, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	var closes atomic.Int64
	if err := srv.add(&c.Header, src, func() error { closes.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.handler()}
	serveDone := make(chan struct{})
	go func() { httpSrv.Serve(ln); close(serveDone) }()
	url := "http://" + ln.Addr().String()

	if resp, err := http.Get(url + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain /readyz: resp=%v err=%v, want 200", resp, err)
	} else {
		resp.Body.Close()
	}

	// Pin an in-flight refine against the stalled store, then begin the
	// drain window (what a load balancer sees between deregistration and
	// listener close).
	src.stall()
	inflight := make(chan refineResult, 1)
	go func() {
		start := time.Now()
		resp, err := http.Get(url + "/refine?field=Jx&rel=1e-4")
		if err != nil {
			inflight <- refineResult{status: -1}
			return
		}
		defer resp.Body.Close()
		res := refineResult{status: resp.StatusCode, elapsed: time.Since(start)}
		json.NewDecoder(resp.Body).Decode(&res.body)
		inflight <- res
	}()
	waitUntil(t, func() bool { return src.entered.Load() >= 1 })

	srv.beginDrain()
	resp, err := http.Get(url + "/refine?field=Jx&rel=1e-4")
	if err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || e.Detail != "draining" {
		t.Fatalf("refine during drain: status %d detail %q, want 503 draining", resp.StatusCode, e.Detail)
	}
	if resp, err = http.Get(url + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("/readyz during drain: status %d, want 503", resp.StatusCode)
		}
	}

	// Release the store and complete the shutdown: the pinned refine must
	// finish with correct data before the server exits.
	drainDone := make(chan struct{})
	go func() { drainAndShutdown(srv, httpSrv, 10*time.Second); close(drainDone) }()
	src.unstall()
	res := <-inflight
	if res.status != http.StatusOK || res.body.Checksum != want {
		t.Fatalf("in-flight refine across drain: status %d checksum %q, want 200 %s", res.status, res.body.Checksum, want)
	}
	select {
	case <-drainDone:
	case <-time.After(15 * time.Second):
		t.Fatal("drainAndShutdown did not complete")
	}
	<-serveDone
	if n := closes.Load(); n != 1 {
		t.Fatalf("store close called %d times during drain, want 1", n)
	}
	srv.close()
	if n := closes.Load(); n != 1 {
		t.Fatalf("store close called %d times after repeated close, want 1", n)
	}
}

// TestReadyzProbeFailure registers a field whose store cannot serve its
// first segment: /readyz must answer 503/probe_failed while /healthz stays
// 200 — liveness and readiness are distinct signals.
func TestReadyzProbeFailure(t *testing.T) {
	c := buildCompressed(t, "Jx")
	src := &flakySource{inner: c}
	src.failing.Store(true)
	o := obs.New()
	srv, err := newServer(serverConfig{CacheBytes: 64 << 20, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.close)
	if err := srv.add(&c.Header, src, nil); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || e.Detail != "probe_failed" {
		t.Fatalf("/readyz with failed probe: status %d detail %q, want 503 probe_failed", resp.StatusCode, e.Detail)
	}
	if resp, err = http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz with failed probe: resp=%v err=%v, want 200", resp, err)
	} else {
		resp.Body.Close()
	}
}

// TestRecoveryMiddleware injects a panicking route under the production
// middleware and checks it surfaces as a JSON 500 plus a serve.panics
// count instead of a torn connection.
func TestRecoveryMiddleware(t *testing.T) {
	o := obs.New()
	srv, err := newServer(serverConfig{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.close)
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	ts := httptest.NewServer(srv.withRecovery(mux))
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	decodeErr := json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || decodeErr != nil {
		t.Fatalf("panicking handler: status %d decode %v, want JSON 500", resp.StatusCode, decodeErr)
	}
	if got := resp.Header.Get("X-Content-Type-Options"); got != "nosniff" {
		t.Fatalf("panic response X-Content-Type-Options = %q, want nosniff", got)
	}
	if n := o.Metrics.Snapshot().Counters["serve.panics"]; n != 1 {
		t.Fatalf("serve.panics = %d, want 1", n)
	}
}

// TestErrorBodyShape checks the structured error contract on an ordinary
// failure: JSON body with error/status/detail fields and the nosniff
// header, not a bare text line.
func TestErrorBodyShape(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/refine?field=nope")
	if err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	decodeErr := json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || decodeErr != nil {
		t.Fatalf("unknown field: status %d decode %v, want JSON 404", resp.StatusCode, decodeErr)
	}
	if e.Status != http.StatusNotFound || e.Error == "" {
		t.Fatalf("error body = %+v, want status 404 and a message", e)
	}
	if got := resp.Header.Get("X-Content-Type-Options"); got != "nosniff" {
		t.Fatalf("error X-Content-Type-Options = %q, want nosniff", got)
	}
}

// TestRequestDeadline covers the timeout= cap resolution: absent uses the
// server default, lower caps win, higher ones are clamped to the server
// limit, and malformed values are rejected.
func TestRequestDeadline(t *testing.T) {
	cases := []struct {
		query   string
		server  time.Duration
		want    time.Duration
		wantErr bool
	}{
		{"", 30 * time.Second, 30 * time.Second, false},
		{"timeout=500ms", 30 * time.Second, 500 * time.Millisecond, false},
		{"timeout=2m", 30 * time.Second, 30 * time.Second, false},
		{"timeout=500ms", 0, 500 * time.Millisecond, false},
		{"timeout=banana", 30 * time.Second, 0, true},
		{"timeout=-1s", 30 * time.Second, 0, true},
		{"timeout=0s", 30 * time.Second, 0, true},
	}
	for _, tc := range cases {
		r, err := http.NewRequest(http.MethodGet, "/refine?"+tc.query, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := requestDeadline(r, tc.server)
		if (err != nil) != tc.wantErr || got != tc.want {
			t.Errorf("requestDeadline(%q, %v) = %v, %v; want %v, err=%v", tc.query, tc.server, got, err, tc.want, tc.wantErr)
		}
	}
}
