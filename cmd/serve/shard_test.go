package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"pmgard/internal/core"
	"pmgard/internal/leakcheck"
	"pmgard/internal/obs"
	"pmgard/internal/shard"
)

// TestParseTolerance pins the validation contract of the tolerance
// parameters: strconv.ParseFloat accepts "NaN" and "+Inf", and both used to
// slip past the plain `<= 0` check because every comparison with NaN is
// false. Only finite positive values may reach the planner.
func TestParseTolerance(t *testing.T) {
	c := buildCompressed(t, "Jx")
	h := &c.Header
	cases := []struct {
		query string
		ok    bool
	}{
		{"abs=0.5", true},
		{"rel=1e-4", true},
		{"abs=1e-300", true},
		{"", false},         // no parameter at all
		{"abs=", false},     // empty value falls through to "required"
		{"abs=zero", false}, // unparsable
		{"abs=0", false},    // zero
		{"abs=-1", false},   // negative
		{"abs=NaN", false},  // parses, compares false against everything
		{"abs=nan", false},  // ParseFloat is case-insensitive here
		{"abs=+Inf", false}, // positive but not finite
		{"abs=-Inf", false}, // negative infinity
		{"abs=Infinity", false},
		{"rel=NaN", false},
		{"rel=Inf", false},
		{"rel=-1e-4", false},
		{"rel=0", false},
	}
	for _, tc := range cases {
		r := httptest.NewRequest(http.MethodGet, "/refine?"+tc.query, nil)
		tol, err := parseTolerance(r, h)
		if tc.ok && (err != nil || !(tol > 0)) {
			t.Errorf("parseTolerance(%q) = %v, %v; want a positive tolerance", tc.query, tol, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("parseTolerance(%q) = %v, nil; want an error", tc.query, tol)
		}
	}
}

// TestRefineRejectsNonFiniteTolerance drives the NaN/Inf rejection end to
// end: the response must be a structured 400 with the bad_tolerance detail
// tag, not a refine over a poisoned tolerance.
func TestRefineRejectsNonFiniteTolerance(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	for _, q := range []string{"abs=NaN", "abs=%2BInf", "rel=NaN", "abs=-Inf"} {
		resp, err := http.Get(ts.URL + "/refine?field=Jx&" + q)
		if err != nil {
			t.Fatal(err)
		}
		var e errorResponse
		decodeErr := json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || decodeErr != nil {
			t.Fatalf("refine with %s: status %d (decode %v), want 400", q, resp.StatusCode, decodeErr)
		}
		if e.Detail != "bad_tolerance" {
			t.Fatalf("refine with %s: detail %q, want bad_tolerance", q, e.Detail)
		}
	}
}

// TestRetryAfterTracksBreakerCooldown trips the field breaker under two
// different -breaker-cooldown settings and requires the 503 breaker_open
// response's Retry-After header to report the actual cooldown remaining
// rather than the old hardcoded 1 second.
func TestRetryAfterTracksBreakerCooldown(t *testing.T) {
	for _, cooldown := range []time.Duration{2 * time.Second, 5 * time.Second} {
		t.Run(cooldown.String(), func(t *testing.T) {
			c := buildCompressed(t, "Jx")
			src := &flakySource{inner: c}
			_, ts, _ := newChaosServer(t, serverConfig{
				CacheBytes:      64 << 20,
				RequestTimeout:  10 * time.Second,
				BreakerFailures: 3,
				BreakerCooldown: cooldown,
			}, &c.Header, src)

			src.failing.Store(true)
			for i := 0; i < 3; i++ {
				doRefine(t, ts, "field=Jx&rel=1e-4")
			}
			resp, err := http.Get(ts.URL + "/refine?field=Jx&rel=1e-4")
			if err != nil {
				t.Fatal(err)
			}
			var e errorResponse
			decodeErr := json.NewDecoder(resp.Body).Decode(&e)
			resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable || decodeErr != nil || e.Detail != "breaker_open" {
				t.Fatalf("open-breaker refine: status %d detail %q (decode %v), want 503 breaker_open",
					resp.StatusCode, e.Detail, decodeErr)
			}
			// The breaker opened milliseconds ago, so the remaining cooldown
			// rounds up to exactly the configured seconds.
			want := strconv.Itoa(int(cooldown / time.Second))
			if ra := resp.Header.Get("Retry-After"); ra != want {
				t.Fatalf("Retry-After = %q under -breaker-cooldown %v, want %q", ra, cooldown, want)
			}
		})
	}
}

// TestRetryAfterScalesWithQueueDepth pins the shed path's Retry-After: one
// inflight slot and a full two-deep queue mean a shed client is told to
// come back in 1 + 2/1 = 3 seconds, not a flat 1.
func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	base := leakcheck.Baseline()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		leakcheck.Check(t, base, 10*time.Second)
	})
	c := buildCompressed(t, "Jx")
	src := &stallSource{inner: c}
	srv, ts, _ := newChaosServer(t, serverConfig{
		CacheBytes:     64 << 20,
		RequestTimeout: 30 * time.Second,
		MaxInflight:    1,
		MaxQueue:       2,
	}, &c.Header, src)

	src.stall()
	done := make(chan refineResult, 3)
	go func() { done <- doRefine(t, ts, "field=Jx&rel=1e-4") }()
	waitUntil(t, func() bool { return src.entered.Load() >= 1 })
	for i := 0; i < 2; i++ {
		go func() { done <- doRefine(t, ts, "field=Jx&rel=1e-4") }()
	}
	waitUntil(t, func() bool { return srv.adm.Stats().Queued == 2 })

	resp, err := http.Get(ts.URL + "/refine?field=Jx&rel=1e-4")
	if err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	decodeErr := json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || decodeErr != nil || e.Detail != "shed" {
		t.Fatalf("overflow refine: status %d detail %q (decode %v), want 503 shed", resp.StatusCode, e.Detail, decodeErr)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("shed Retry-After = %q with 2 queued over 1 slot, want 3", ra)
	}
	src.unstall()
	for i := 0; i < 3; i++ {
		if res := <-done; res.status != http.StatusOK {
			t.Fatalf("queued refine after unstall: status %d (detail %q)", res.status, res.detail)
		}
	}
}

// startNode builds one shard node: a node-role server holding the artifact
// and an httptest front end exposing /planes alongside the public API.
func startNode(t *testing.T, c *core.Compressed) (*httptest.Server, *obs.Obs) {
	t.Helper()
	o := obs.New()
	srv, err := newServer(serverConfig{Role: "node", CacheBytes: 64 << 20, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.close)
	if err := srv.add(&c.Header, c, nil); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, o
}

// startRouter builds a router-role server over the map and an httptest
// front end. The 1-byte cache keeps every plane uncacheable (oversize), so
// each refine exercises the network path while concurrent misses still
// collapse through singleflight.
func startRouter(t *testing.T, m *shard.Map, cacheBytes int64) (*server, *httptest.Server, *obs.Obs) {
	t.Helper()
	o := obs.New()
	srv, err := newServer(serverConfig{Role: "router", CacheBytes: cacheBytes, RequestTimeout: 30 * time.Second, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.close)
	if err := srv.initRouter(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts, o
}

// TestShardRouterServesAndFailsOver is the shard tier's integration test:
// a router over three node processes must serve refinements byte-identical
// to single-node serving, spread plane reads across the nodes, and — with
// replication 2 — keep serving the same bytes after one node dies mid-run,
// degrading to replicas instead of erroring.
func TestShardRouterServesAndFailsOver(t *testing.T) {
	base := leakcheck.Baseline()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		leakcheck.Check(t, base, 10*time.Second)
	})
	c := buildCompressed(t, "Jx")
	want := groundTruth(t, c, 1e-4)

	const nodes = 3
	nodeTS := make([]*httptest.Server, nodes)
	for i := range nodeTS {
		nodeTS[i], _ = startNode(t, c)
	}
	mapJSON := fmt.Sprintf(`{
		"nodes": [
			{"name": "n0", "url": %q},
			{"name": "n1", "url": %q},
			{"name": "n2", "url": %q}
		],
		"replication": 2
	}`, nodeTS[0].URL, nodeTS[1].URL, nodeTS[2].URL)
	m, err := shard.ParseMap([]byte(mapJSON))
	if err != nil {
		t.Fatal(err)
	}
	_, rts, ro := startRouter(t, m, 1)

	// The router discovered the shard's fields and serves the public API.
	var fields struct {
		Fields []string `json:"fields"`
	}
	getJSON(t, rts, "/fields", &fields)
	if len(fields.Fields) != 1 || fields.Fields[0] != "Jx" {
		t.Fatalf("router fields = %v, want [Jx]", fields.Fields)
	}
	var open openResponse
	getJSON(t, rts, "/open?field=Jx", &open)
	if open.Field != "Jx" || open.Levels == 0 || open.Planes == 0 {
		t.Fatalf("router open response incomplete: %+v", open)
	}

	// Concurrent refines through the router agree with single-node serving.
	const workers = 4
	var wg sync.WaitGroup
	results := make([]refineResult, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = doRefine(t, rts, "field=Jx&rel=1e-4")
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res.status != http.StatusOK {
			t.Fatalf("router refine %d: status %d (detail %q)", i, res.status, res.detail)
		}
		if res.body.Checksum != want {
			t.Fatalf("router refine %d checksum %s, want single-node %s", i, res.body.Checksum, want)
		}
		if res.body.Degraded {
			t.Fatalf("router refine %d degraded with all nodes up", i)
		}
	}

	// Placement spread the reads: more than one node served planes, and no
	// failover happened with every node healthy.
	snap := ro.Metrics.Snapshot()
	reads := make([]int64, nodes)
	var served int
	for i := 0; i < nodes; i++ {
		reads[i] = snap.Counters[fmt.Sprintf("shard.node_reads.n%d", i)]
		if reads[i] > 0 {
			served++
		}
	}
	if served < 2 {
		t.Fatalf("plane reads did not spread across nodes: %v", reads)
	}
	if snap.Counters["shard.replica_failover"] != 0 {
		t.Fatalf("replica_failover = %d with all nodes healthy, want 0", snap.Counters["shard.replica_failover"])
	}

	// Kill the busiest node mid-run. With replication 2 every plane still
	// has a live replica, so the refine must return the same bytes.
	busiest := 0
	for i := 1; i < nodes; i++ {
		if reads[i] > reads[busiest] {
			busiest = i
		}
	}
	nodeTS[busiest].Close()
	res := doRefine(t, rts, "field=Jx&rel=1e-4")
	if res.status != http.StatusOK {
		t.Fatalf("refine after killing n%d: status %d (detail %q)", busiest, res.status, res.detail)
	}
	if res.body.Checksum != want {
		t.Fatalf("refine after killing n%d: checksum %s, want %s", busiest, res.body.Checksum, want)
	}
	if res.body.Degraded {
		t.Fatalf("refine after killing n%d reported degraded: replicas should cover", busiest)
	}
	snap = ro.Metrics.Snapshot()
	if snap.Counters["shard.replica_failover"] == 0 {
		t.Fatal("no replica failover recorded after killing the busiest node")
	}
	if got := snap.Counters[fmt.Sprintf("shard.node_reads.n%d", busiest)]; got != reads[busiest] {
		t.Fatalf("dead node n%d read count moved from %d to %d", busiest, reads[busiest], got)
	}
}

// TestShardNodeSharesCacheWithLocalRefines pins the node-side cache
// contract: /planes traffic and the node's own /refine sessions use the
// same cache keys, so a plane served to a router is a hit for a local
// analyst and vice versa.
func TestShardNodeSharesCacheWithLocalRefines(t *testing.T) {
	c := buildCompressed(t, "Jx")
	ts, o := startNode(t, c)

	// A local refine warms the node cache.
	if res := doRefine(t, ts, "field=Jx&rel=1e-4"); res.status != http.StatusOK {
		t.Fatalf("local refine: status %d", res.status)
	}
	misses := o.Metrics.Snapshot().Counters["servecache.misses"]

	// A /planes read of a plane the refine already fetched must be a hit.
	resp, err := http.Get(ts.URL + "/planes?field=Jx&level=0&plane=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/planes read: status %d", resp.StatusCode)
	}
	snap := o.Metrics.Snapshot()
	if snap.Counters["servecache.misses"] != misses {
		t.Fatalf("/planes read missed the cache (misses %d -> %d): node and refine keys diverged",
			misses, snap.Counters["servecache.misses"])
	}
	if snap.Counters["servecache.hits"] == 0 {
		t.Fatal("/planes read recorded no cache hit")
	}

	// Out-of-range and unknown-field reads are structured 4xx, not 5xx.
	for _, q := range []string{"field=Jx&level=99&plane=0", "field=Nope&level=0&plane=0", "field=Jx&level=0&plane=abc"} {
		resp, err := http.Get(ts.URL + "/planes?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode < 400 || resp.StatusCode >= 500 {
			t.Fatalf("/planes?%s: status %d, want 4xx", q, resp.StatusCode)
		}
	}
}

// TestShardRoleFlagValidation pins the CLI contract around the shard
// flags: a router needs a map and takes no local inputs, and unknown roles
// are rejected.
func TestShardRoleFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-role", "router"}, // no -shard-map
		{"-role", "router", "-shard-map", "m.json", "-in", "x.pmgd"}, // local inputs
		{"-role", "coordinator", "-in", "x.pmgd"},                    // unknown role
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want flag validation error", args)
		}
	}
}
