package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pmgard/internal/core"
	"pmgard/internal/faults"
	"pmgard/internal/leakcheck"
	"pmgard/internal/obs"
	"pmgard/internal/sim/warpx"
	"pmgard/internal/storage"
)

// The chaos harness: httptest-driven refine traffic replayed against
// fault-injected sources, asserting the hardened serving tier's contract —
// bounded latency under deadline, correct status mapping, no goroutine
// leaks, checksum agreement between degraded/recovered and healthy serving,
// and breaker state transitions.

// buildCompressed compresses a synthetic WarpX field in memory.
func buildCompressed(t *testing.T, name string) *core.Compressed {
	t.Helper()
	field, err := warpx.DefaultConfig(17, 17, 17).Field(name, 5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compress(field, core.DefaultConfig(), name, 0)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// groundTruth computes the checksum a healthy refine of c at rel must
// produce, via a direct session over the unfaulted source.
func groundTruth(t *testing.T, c *core.Compressed, rel float64) string {
	t.Helper()
	h := &c.Header
	sess, err := core.NewSession(h, c)
	if err != nil {
		t.Fatal(err)
	}
	rec, _, deg, err := sess.Refine(h.TheoryEstimator(), h.AbsTolerance(rel))
	if err != nil || deg != nil {
		t.Fatalf("ground-truth refine: deg=%v err=%v", deg, err)
	}
	return tensorChecksum(rec)
}

// newChaosServer builds a server over one pre-wrapped source and starts an
// httptest front end with the full middleware chain.
func newChaosServer(t *testing.T, cfg serverConfig, h *core.Header, src core.SegmentSource) (*server, *httptest.Server, *obs.Obs) {
	t.Helper()
	o := obs.New()
	cfg.Obs = o
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.close)
	if err := srv.add(h, src, nil); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts, o
}

// refineResult is one client observation of a /refine request.
type refineResult struct {
	status  int
	detail  string
	body    refineResponse
	elapsed time.Duration
}

// doRefine fires one refine request and decodes either response shape.
func doRefine(t *testing.T, ts *httptest.Server, query string) refineResult {
	t.Helper()
	start := time.Now()
	resp, err := http.Get(ts.URL + "/refine?" + query)
	if err != nil {
		t.Fatalf("GET /refine?%s: %v", query, err)
	}
	defer resp.Body.Close()
	res := refineResult{status: resp.StatusCode, elapsed: time.Since(start)}
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res.body); err != nil {
			t.Fatalf("decode refine response: %v", err)
		}
		return res
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("status %d with undecodable error body: %v", resp.StatusCode, err)
	}
	res.detail = e.Detail
	return res
}

// stallSource blocks reads while stalled; unstall releases present and
// future readers. The inner source is consulted after the gate clears.
type stallSource struct {
	inner   core.SegmentSource
	mu      sync.Mutex
	gate    chan struct{}
	entered atomic.Int64
}

func (s *stallSource) stall() {
	s.mu.Lock()
	if s.gate == nil {
		s.gate = make(chan struct{})
	}
	s.mu.Unlock()
}

func (s *stallSource) unstall() {
	s.mu.Lock()
	if s.gate != nil {
		close(s.gate)
		s.gate = nil
	}
	s.mu.Unlock()
}

func (s *stallSource) Segment(level, plane int) ([]byte, error) {
	s.mu.Lock()
	gate := s.gate
	s.mu.Unlock()
	if gate != nil {
		s.entered.Add(1)
		<-gate
	}
	return s.inner.Segment(level, plane)
}

// flakySource fails every read with a transient fault while failing is set.
type flakySource struct {
	inner   core.SegmentSource
	failing atomic.Bool
}

func (f *flakySource) Segment(level, plane int) ([]byte, error) {
	if f.failing.Load() {
		return nil, fmt.Errorf("chaos: injected outage: %w", storage.ErrTransient)
	}
	return f.inner.Segment(level, plane)
}

// TestChaosLatencyAndTransientFaults replays concurrent refine waves at 1,
// 4 and 8 workers against a source injecting latency spikes and transient
// read failures. Every request must succeed with the healthy checksum,
// tail latency must stay bounded, and no goroutines may leak.
func TestChaosLatencyAndTransientFaults(t *testing.T) {
	base := leakcheck.Baseline()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		leakcheck.Check(t, base, 10*time.Second)
	})
	c := buildCompressed(t, "Jx")
	want := groundTruth(t, c, 1e-4)
	src := faults.WrapSource(c, faults.Config{
		Seed:          42,
		TransientRate: 0.2,
		Latency:       200 * time.Microsecond,
	})
	_, ts, _ := newChaosServer(t, serverConfig{
		CacheBytes:      64 << 20,
		Retries:         8,
		RequestTimeout:  30 * time.Second,
		BreakerFailures: 5,
	}, &c.Header, src)

	for _, workers := range []int{1, 4, 8} {
		const waves = 3
		var durations []time.Duration
		var mu sync.Mutex
		for wave := 0; wave < waves; wave++ {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					res := doRefine(t, ts, "field=Jx&rel=1e-4")
					mu.Lock()
					durations = append(durations, res.elapsed)
					mu.Unlock()
					if res.status != http.StatusOK {
						t.Errorf("workers=%d: status %d (detail %q)", workers, res.status, res.detail)
						return
					}
					if res.body.Checksum != want {
						t.Errorf("workers=%d: checksum %s, want %s", workers, res.body.Checksum, want)
					}
					if res.body.Degraded {
						t.Errorf("workers=%d: degraded under transient-only faults", workers)
					}
				}()
			}
			wg.Wait()
		}
		sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
		if p99 := durations[len(durations)-1]; p99 > 10*time.Second {
			t.Fatalf("workers=%d: p99 refine latency %v exceeds bound", workers, p99)
		}
	}
}

// TestChaosPermanentPlaneLoss serves a field whose store has permanently
// lost a plane: refines must keep succeeding in degraded mode with
// agreeing checksums, and the data-level fault must never open the
// circuit breaker.
func TestChaosPermanentPlaneLoss(t *testing.T) {
	base := leakcheck.Baseline()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		leakcheck.Check(t, base, 10*time.Second)
	})
	c := buildCompressed(t, "Jx")
	src := faults.WrapSource(c, faults.Config{
		Seed:      7,
		Permanent: []faults.PlaneID{{Level: 0, Plane: 2}},
	})
	_, ts, o := newChaosServer(t, serverConfig{
		CacheBytes:      64 << 20,
		RequestTimeout:  30 * time.Second,
		BreakerFailures: 3,
	}, &c.Header, src)

	var first refineResult
	for i := 0; i < 8; i++ {
		res := doRefine(t, ts, "field=Jx&rel=1e-4")
		if res.status != http.StatusOK {
			t.Fatalf("refine %d over lost plane: status %d (detail %q)", i, res.status, res.detail)
		}
		if !res.body.Degraded {
			t.Fatalf("refine %d did not report degradation", i)
		}
		if i == 0 {
			first = res
			continue
		}
		if res.body.Checksum != first.body.Checksum {
			t.Fatalf("degraded refine %d checksum %s != first %s", i, res.body.Checksum, first.body.Checksum)
		}
	}
	if state := o.Metrics.Snapshot().Gauges["storage.breaker_state.Jx"]; state != 0 {
		t.Fatalf("breaker state after permanent data faults = %v, want 0 (closed)", state)
	}
}

// TestChaosStallThenRecover drives a refine into a fully stalled store and
// requires the deadline to cut it loose within the acceptance budget
// (request-timeout + 100ms of handler overhead), then verifies the tier
// serves correct data again once the stall clears.
func TestChaosStallThenRecover(t *testing.T) {
	base := leakcheck.Baseline()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		leakcheck.Check(t, base, 10*time.Second)
	})
	c := buildCompressed(t, "Jx")
	want := groundTruth(t, c, 1e-4)
	src := &stallSource{inner: c}
	const reqTimeout = time.Second
	_, ts, _ := newChaosServer(t, serverConfig{
		CacheBytes:      64 << 20,
		Retries:         4,
		RequestTimeout:  reqTimeout,
		BreakerFailures: 5,
	}, &c.Header, src)

	src.stall()
	res := doRefine(t, ts, "field=Jx&rel=1e-4")
	if res.status != http.StatusGatewayTimeout {
		t.Fatalf("stalled refine: status %d (detail %q), want 504", res.status, res.detail)
	}
	if res.detail != "deadline" {
		t.Fatalf("stalled refine detail = %q, want deadline", res.detail)
	}
	if res.elapsed > reqTimeout+100*time.Millisecond {
		t.Fatalf("stalled refine returned in %v, budget %v", res.elapsed, reqTimeout+100*time.Millisecond)
	}

	// The client-side timeout= parameter caps the deadline even lower.
	start := time.Now()
	res = doRefine(t, ts, "field=Jx&rel=1e-4&timeout=150ms")
	if res.status != http.StatusGatewayTimeout {
		t.Fatalf("capped refine: status %d, want 504", res.status)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("timeout=150ms refine took %v", elapsed)
	}

	src.unstall()
	res = doRefine(t, ts, "field=Jx&rel=1e-4")
	if res.status != http.StatusOK || res.body.Checksum != want {
		t.Fatalf("recovered refine: status %d checksum %s, want 200 %s", res.status, res.body.Checksum, want)
	}
	if res.body.Degraded {
		t.Fatal("recovered refine reported degraded")
	}
}

// TestChaosBreakerOpensAndRecovers walks the circuit breaker through its
// whole state machine with real traffic: transient outage opens it,
// open-state refines fail fast with 503/breaker_open, and a half-open
// probe after the cooldown closes it again.
func TestChaosBreakerOpensAndRecovers(t *testing.T) {
	base := leakcheck.Baseline()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		leakcheck.Check(t, base, 10*time.Second)
	})
	c := buildCompressed(t, "Jx")
	want := groundTruth(t, c, 1e-4)
	src := &flakySource{inner: c}
	const cooldown = 100 * time.Millisecond
	srv, ts, o := newChaosServer(t, serverConfig{
		CacheBytes:      64 << 20,
		RequestTimeout:  10 * time.Second,
		BreakerFailures: 3,
		BreakerCooldown: cooldown,
	}, &c.Header, src)

	src.failing.Store(true)
	for i := 0; i < 3; i++ {
		res := doRefine(t, ts, "field=Jx&rel=1e-4")
		if res.status != http.StatusBadGateway || res.detail != "upstream" {
			t.Fatalf("outage refine %d: status %d detail %q, want 502 upstream", i, res.status, res.detail)
		}
	}
	if state := o.Metrics.Snapshot().Gauges["storage.breaker_state.Jx"]; state != 1 {
		t.Fatalf("breaker state after outage = %v, want 1 (open)", state)
	}
	res := doRefine(t, ts, "field=Jx&rel=1e-4")
	if res.status != http.StatusServiceUnavailable || res.detail != "breaker_open" {
		t.Fatalf("open-breaker refine: status %d detail %q, want 503 breaker_open", res.status, res.detail)
	}
	if fastFails := srv.fields["Jx"].breaker.Stats().FastFails; fastFails == 0 {
		t.Fatal("open breaker did not fast-fail the read")
	}

	src.failing.Store(false)
	time.Sleep(cooldown + 50*time.Millisecond)
	res = doRefine(t, ts, "field=Jx&rel=1e-4")
	if res.status != http.StatusOK || res.body.Checksum != want {
		t.Fatalf("half-open probe refine: status %d checksum %q, want 200 %s", res.status, res.body.Checksum, want)
	}
	if state := o.Metrics.Snapshot().Gauges["storage.breaker_state.Jx"]; state != 0 {
		t.Fatalf("breaker state after recovery = %v, want 0 (closed)", state)
	}
}

// TestChaosShedUnderOverload pins the single inflight slot with a stalled
// refine and requires the admission controller to shed the second request
// with 503 + Retry-After instead of queueing unboundedly.
func TestChaosShedUnderOverload(t *testing.T) {
	base := leakcheck.Baseline()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		leakcheck.Check(t, base, 10*time.Second)
	})
	c := buildCompressed(t, "Jx")
	src := &stallSource{inner: c}
	_, ts, o := newChaosServer(t, serverConfig{
		CacheBytes:     64 << 20,
		RequestTimeout: 30 * time.Second,
		MaxInflight:    1,
		MaxQueue:       0,
	}, &c.Header, src)

	src.stall()
	firstDone := make(chan refineResult, 1)
	go func() { firstDone <- doRefine(t, ts, "field=Jx&rel=1e-4") }()
	waitUntil(t, func() bool { return src.entered.Load() >= 1 })

	resp, err := http.Get(ts.URL + "/refine?field=Jx&rel=1e-4")
	if err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	decodeErr := json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || decodeErr != nil || e.Detail != "shed" {
		t.Fatalf("overflow refine: status %d detail %q (decode %v), want 503 shed", resp.StatusCode, e.Detail, decodeErr)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if shed := o.Metrics.Snapshot().Counters["serve.shed"]; shed != 1 {
		t.Fatalf("serve.shed = %d, want 1", shed)
	}

	src.unstall()
	if res := <-firstDone; res.status != http.StatusOK {
		t.Fatalf("pinned refine after unstall: status %d", res.status)
	}
}

// TestChaosCancelledWaiterDoesNotPoisonSurvivor coalesces two refines onto
// the same cold-cache flight, times the first one out, and requires the
// survivor to still receive the correct plane data — the serving-level
// mirror of the servecache detach contract.
func TestChaosCancelledWaiterDoesNotPoisonSurvivor(t *testing.T) {
	base := leakcheck.Baseline()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		leakcheck.Check(t, base, 10*time.Second)
	})
	c := buildCompressed(t, "Jx")
	want := groundTruth(t, c, 1e-4)
	src := &stallSource{inner: c}
	_, ts, o := newChaosServer(t, serverConfig{
		CacheBytes:     64 << 20,
		RequestTimeout: 30 * time.Second,
	}, &c.Header, src)

	src.stall()
	survivorDone := make(chan refineResult, 1)
	go func() { survivorDone <- doRefine(t, ts, "field=Jx&rel=1e-4") }()
	waitUntil(t, func() bool { return src.entered.Load() >= 1 })

	// The impatient waiter coalesces onto the survivor's first-plane flight
	// and gives up after 150ms.
	res := doRefine(t, ts, "field=Jx&rel=1e-4&timeout=150ms")
	if res.status != http.StatusGatewayTimeout {
		t.Fatalf("impatient refine: status %d (detail %q), want 504", res.status, res.detail)
	}

	src.unstall()
	surv := <-survivorDone
	if surv.status != http.StatusOK {
		t.Fatalf("survivor refine: status %d (detail %q)", surv.status, surv.detail)
	}
	if surv.body.Checksum != want {
		t.Fatalf("survivor checksum %s, want %s", surv.body.Checksum, want)
	}
	if detached := o.Metrics.Snapshot().Counters["servecache.detached"]; detached == 0 {
		t.Fatal("no waiter detach was recorded despite the timed-out request")
	}
}

// waitUntil polls cond until it holds or the deadline expires.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}
