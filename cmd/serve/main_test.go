package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"pmgard/internal/core"
	"pmgard/internal/obs"
	"pmgard/internal/sim/warpx"
)

// buildField compresses a synthetic WarpX field to a .pmgd file and returns
// its path.
func buildField(t *testing.T, name string) string {
	t.Helper()
	field, err := warpx.DefaultConfig(17, 17, 17).Field(name, 5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compress(field, core.DefaultConfig(), name, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name+".pmgd")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func newTestServer(t *testing.T) (*server, *obs.Obs) {
	t.Helper()
	o := obs.New()
	srv, err := newServer(serverConfig{CacheBytes: 64 << 20, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.close)
	if err := srv.addFile(buildField(t, "Jx")); err != nil {
		t.Fatal(err)
	}
	return srv, o
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}

func TestServeOpenAndFields(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var fields struct {
		Fields []string `json:"fields"`
	}
	getJSON(t, ts, "/fields", &fields)
	if len(fields.Fields) != 1 || fields.Fields[0] != "Jx" {
		t.Fatalf("fields = %v, want [Jx]", fields.Fields)
	}

	var open openResponse
	getJSON(t, ts, "/open?field=Jx", &open)
	if open.Field != "Jx" || open.Levels == 0 || open.Planes == 0 || open.TotalBytes <= 0 {
		t.Fatalf("open response incomplete: %+v", open)
	}

	// Single-field servers resolve the field implicitly.
	var open2 openResponse
	getJSON(t, ts, "/open", &open2)
	if open2.Field != "Jx" {
		t.Fatalf("implicit field = %q, want Jx", open2.Field)
	}
}

// TestServeConcurrentRefinesShareCache is the in-process mirror of the CI
// serve smoke: concurrent refinements of the same field must agree bit for
// bit and the second wave must be served from the shared cache.
func TestServeConcurrentRefinesShareCache(t *testing.T) {
	srv, o := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	const n = 4
	var wg sync.WaitGroup
	responses := make([]refineResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/refine?field=Jx&rel=1e-4")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&responses[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("refine %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if responses[i].Checksum != responses[0].Checksum {
			t.Fatalf("refine %d checksum %s != refine 0 checksum %s", i, responses[i].Checksum, responses[0].Checksum)
		}
		if responses[i].BytesFetched != responses[0].BytesFetched {
			t.Fatalf("refine %d BytesFetched %d != refine 0 %d", i, responses[i].BytesFetched, responses[0].BytesFetched)
		}
	}
	if responses[0].Degraded {
		t.Fatal("refine reported degraded on a healthy store")
	}

	snap := o.Metrics.Snapshot()
	if snap.Counters["servecache.hits"]+snap.Counters["servecache.coalesced"] == 0 {
		t.Fatalf("no cache sharing across %d identical refines: %v", n, snap.Counters)
	}
	if snap.Counters["serve.refines"] != n {
		t.Fatalf("serve.refines = %d, want %d", snap.Counters["serve.refines"], n)
	}

	// /metrics serves the same registry live.
	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	getJSON(t, ts, "/metrics", &metrics)
	if metrics.Counters["serve.refines"] != n {
		t.Fatalf("/metrics serve.refines = %d, want %d", metrics.Counters["serve.refines"], n)
	}
}

func TestServeErrors(t *testing.T) {
	srv, o := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	for _, path := range []string{
		"/open?field=Nope",
		"/refine?field=Jx",          // no tolerance
		"/refine?field=Jx&rel=-1",   // bad tolerance
		"/refine?field=Jx&abs=zero", // unparsable
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("GET %s succeeded, want error status", path)
		}
	}
	if o.Metrics.Snapshot().Counters["serve.errors"] != 4 {
		t.Fatalf("serve.errors = %d, want 4", o.Metrics.Snapshot().Counters["serve.errors"])
	}
}
