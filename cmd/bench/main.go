// Command bench regenerates the paper's tables and figures (DESIGN.md §3)
// and prints them as aligned text tables.
//
// Usage:
//
//	bench -exp all                 # every experiment at default scale
//	bench -exp fig13 -steps 64     # one experiment, more timesteps
//	bench -list                    # list experiment ids
//	bench -exp fig9 -quick         # smoke-test scale
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pmgard/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id or 'all'")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		quick  = flag.Bool("quick", false, "use smoke-test scale")
		dims   = flag.String("dims", "", "WarpX dims override, e.g. 17,17,17")
		gsN    = flag.Int("gs", 0, "Gray-Scott grid extent override")
		steps  = flag.Int("steps", 0, "timestep count override")
		seed   = flag.Int64("seed", 0, "seed override")
		csvDir = flag.String("csv", "", "also write each table as CSV under this directory")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-14s %s\n", id, experiments.Registry()[id].Paper)
		}
		return
	}

	p := experiments.Default()
	if *quick {
		p = experiments.Quick()
	}
	if *dims != "" {
		var d []int
		for _, s := range strings.Split(*dims, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: bad dims %q\n", *dims)
				os.Exit(2)
			}
			d = append(d, v)
		}
		p.WarpXDims = d
	}
	if *gsN > 0 {
		p.GrayScottN = *gsN
	}
	if *steps > 0 {
		p.Steps = *steps
	}
	if *seed != 0 {
		p.Seed = *seed
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		if err := experiments.Run(id, p, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if *csvDir != "" {
			paths, err := experiments.RunCSV(id, p, *csvDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			for _, path := range paths {
				fmt.Printf("wrote %s\n", path)
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
