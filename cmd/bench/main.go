// Command bench regenerates the paper's tables and figures (DESIGN.md §3)
// and prints them as aligned text tables.
//
// Usage:
//
//	bench -exp all                 # every experiment at default scale
//	bench -exp fig13 -steps 64     # one experiment, more timesteps
//	bench -list                    # list experiment ids
//	bench -exp fig9 -quick         # smoke-test scale
//	bench -shard-out BENCH_shard.json  # record the shard node-count sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"pmgard/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		quick    = flag.Bool("quick", false, "use smoke-test scale")
		dims     = flag.String("dims", "", "WarpX dims override, e.g. 17,17,17")
		gsN      = flag.Int("gs", 0, "Gray-Scott grid extent override")
		steps    = flag.Int("steps", 0, "timestep count override")
		seed     = flag.Int64("seed", 0, "seed override")
		csvDir   = flag.String("csv", "", "also write each table as CSV under this directory")
		shardOut = flag.String("shard-out", "", "run the shard node-count sweep and write its JSON record to this path")

		parallelOut   = flag.String("parallel-out", "", "run the GOMAXPROCS scaling sweep and write its JSON record to this path")
		parallelProcs = flag.String("parallel-procs", "1,2,4,8", "comma-separated GOMAXPROCS values for -parallel-out")
		parallelReps  = flag.Int("parallel-reps", 3, "repetitions per point for -parallel-out (best-of)")
		scalingGate   = flag.Float64("scaling-gate", 0, "fail unless the procs=2 refactor wall clock is <= this fraction of procs=1 (0 = no gate)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-14s %s\n", id, experiments.Registry()[id].Paper)
		}
		return
	}

	p := experiments.Default()
	if *quick {
		p = experiments.Quick()
	}
	if *dims != "" {
		var d []int
		for _, s := range strings.Split(*dims, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: bad dims %q\n", *dims)
				os.Exit(2)
			}
			d = append(d, v)
		}
		p.WarpXDims = d
	}
	if *gsN > 0 {
		p.GrayScottN = *gsN
	}
	if *steps > 0 {
		p.Steps = *steps
	}
	if *seed != 0 {
		p.Seed = *seed
	}

	if *shardOut != "" {
		if err := recordShardSweep(p, *shardOut); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}

	if *parallelOut != "" || *scalingGate > 0 {
		var procs []int
		for _, s := range strings.Split(*parallelProcs, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "bench: bad -parallel-procs %q\n", *parallelProcs)
				os.Exit(2)
			}
			procs = append(procs, v)
		}
		if err := recordParallelSweep(p, procs, *parallelReps, *parallelOut, *scalingGate); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		if err := experiments.Run(id, p, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if *csvDir != "" {
			paths, err := experiments.RunCSV(id, p, *csvDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			for _, path := range paths {
				fmt.Printf("wrote %s\n", path)
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// recordShardSweep runs the shard-tier node-count sweep, prints its table,
// and writes the machine-readable record (the BENCH_shard.json document) to
// path.
func recordShardSweep(p experiments.Params, path string) error {
	points, err := experiments.ShardSweep(p, []int{1, 2, 3})
	if err != nil {
		return err
	}
	if err := experiments.ShardTable(points).Fprint(os.Stdout); err != nil {
		return err
	}
	dims := make([]string, len(p.WarpXDims))
	for i, d := range p.WarpXDims {
		dims[i] = strconv.Itoa(d)
	}
	regen := fmt.Sprintf("go run ./cmd/bench -dims %s -shard-out %s", strings.Join(dims, ","), path)
	doc := map[string]any{
		"description": "Shard-tier node-count sweep: a shard.Router issues a seeded uniform-random plane-read " +
			"workload (16 reads per plane, 4 concurrent workers, replication 1) against N file-backed /planes " +
			"nodes on loopback, each serving one shared WarpX artifact through its own servecache budgeted at " +
			"40% of the artifact's decompressed bytes, after one warming pass. Regenerate with: " + regen,
		"date":   time.Now().Format("2006-01-02"),
		"goos":   runtime.GOOS,
		"goarch": runtime.GOARCH,
		"cpus":   runtime.NumCPU(),
		"note": "Recorded on a single-vCPU container (GOMAXPROCS=1): all nodes, the router and the workers " +
			"share one core, so throughput scaling with node count is pure work elimination — more aggregate " +
			"cache bytes mean fewer store reads and lossless decompressions on the read path — not CPU " +
			"parallelism. On real hardware each node also brings its own cores and NIC and the gap widens.",
		"benchmarks": map[string]any{
			"ShardSweep": map[string]any{
				"field":  fmt.Sprintf("WarpX Jx %v, default codec config, seed %d", p.WarpXDims, p.Seed),
				"points": points,
			},
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// recordParallelSweep runs the GOMAXPROCS scaling sweep, prints its table,
// optionally writes the machine-readable record (the BENCH_parallel.json
// document) and optionally enforces the CI scaling gate.
func recordParallelSweep(p experiments.Params, procs []int, reps int, path string, gate float64) error {
	points, err := experiments.ParallelSweep(p, procs, reps)
	if err != nil {
		return err
	}
	if err := experiments.ParallelTable(points).Fprint(os.Stdout); err != nil {
		return err
	}
	if path != "" {
		dims := make([]string, len(p.WarpXDims))
		for i, d := range p.WarpXDims {
			dims[i] = strconv.Itoa(d)
		}
		regen := fmt.Sprintf("go run ./cmd/bench -dims %s -parallel-out %s", strings.Join(dims, ","), path)
		note := "Recorded on a multi-core host: each point pins GOMAXPROCS and the pipeline worker " +
			"count together, so refactor speedup reflects the (level, plane) fan-out of the streaming " +
			"pipeline running on real cores."
		if runtime.NumCPU() < 2 {
			note = "Recorded on a single-vCPU container (GOMAXPROCS=1): goroutines are concurrent but " +
				"not parallel, so every point shares one core and the sweep measures scheduling overhead, " +
				"not speedup. On a multi-core machine the (level, plane) fan-out of the streaming pipeline " +
				"is embarrassingly parallel and scales with cores; re-record this file there."
		}
		doc := map[string]any{
			"description": "GOMAXPROCS scaling sweep of the streaming refactor pipeline (decompose + " +
				"bit-plane encode + deflate + ordered segment merge, stage-overlapped) and the parallel " +
				"retrieval path. Each point pins GOMAXPROCS and the worker count to the same value; " +
				"output bytes are bit-identical at every point (enforced by the golden equivalence " +
				"tests), only wall clock moves. Best of " + strconv.Itoa(reps) + " reps per point. " +
				"Regenerate with: " + regen,
			"date":   time.Now().Format("2006-01-02"),
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
			"note":   note,
			"benchmarks": map[string]any{
				"ParallelSweep": map[string]any{
					"field":  fmt.Sprintf("WarpX Jx %v, default codec config, seed %d", p.WarpXDims, p.Seed),
					"points": points,
				},
			},
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	if gate > 0 {
		var ns1, ns2 int64
		for _, pt := range points {
			switch pt.Procs {
			case 1:
				ns1 = pt.RefactorNs
			case 2:
				ns2 = pt.RefactorNs
			}
		}
		if ns1 == 0 || ns2 == 0 {
			return fmt.Errorf("scaling gate needs procs 1 and 2 in -parallel-procs")
		}
		if float64(ns2) > gate*float64(ns1) {
			return fmt.Errorf("scaling gate failed: procs=2 refactor %dms > %.2f x procs=1 %dms",
				ns2/1e6, gate, ns1/1e6)
		}
		fmt.Printf("scaling gate ok: procs=2 refactor %.2fx of procs=1 (gate %.2f)\n",
			float64(ns2)/float64(ns1), gate)
	}
	return nil
}
