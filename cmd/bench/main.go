// Command bench regenerates the paper's tables and figures (DESIGN.md §3)
// and prints them as aligned text tables.
//
// Usage:
//
//	bench -exp all                 # every experiment at default scale
//	bench -exp fig13 -steps 64     # one experiment, more timesteps
//	bench -list                    # list experiment ids
//	bench -exp fig9 -quick         # smoke-test scale
//	bench -shard-out BENCH_shard.json  # record the shard node-count sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"pmgard/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		quick    = flag.Bool("quick", false, "use smoke-test scale")
		dims     = flag.String("dims", "", "WarpX dims override, e.g. 17,17,17")
		gsN      = flag.Int("gs", 0, "Gray-Scott grid extent override")
		steps    = flag.Int("steps", 0, "timestep count override")
		seed     = flag.Int64("seed", 0, "seed override")
		csvDir   = flag.String("csv", "", "also write each table as CSV under this directory")
		shardOut = flag.String("shard-out", "", "run the shard node-count sweep and write its JSON record to this path")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-14s %s\n", id, experiments.Registry()[id].Paper)
		}
		return
	}

	p := experiments.Default()
	if *quick {
		p = experiments.Quick()
	}
	if *dims != "" {
		var d []int
		for _, s := range strings.Split(*dims, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: bad dims %q\n", *dims)
				os.Exit(2)
			}
			d = append(d, v)
		}
		p.WarpXDims = d
	}
	if *gsN > 0 {
		p.GrayScottN = *gsN
	}
	if *steps > 0 {
		p.Steps = *steps
	}
	if *seed != 0 {
		p.Seed = *seed
	}

	if *shardOut != "" {
		if err := recordShardSweep(p, *shardOut); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		if err := experiments.Run(id, p, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if *csvDir != "" {
			paths, err := experiments.RunCSV(id, p, *csvDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			for _, path := range paths {
				fmt.Printf("wrote %s\n", path)
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// recordShardSweep runs the shard-tier node-count sweep, prints its table,
// and writes the machine-readable record (the BENCH_shard.json document) to
// path.
func recordShardSweep(p experiments.Params, path string) error {
	points, err := experiments.ShardSweep(p, []int{1, 2, 3})
	if err != nil {
		return err
	}
	if err := experiments.ShardTable(points).Fprint(os.Stdout); err != nil {
		return err
	}
	dims := make([]string, len(p.WarpXDims))
	for i, d := range p.WarpXDims {
		dims[i] = strconv.Itoa(d)
	}
	regen := fmt.Sprintf("go run ./cmd/bench -dims %s -shard-out %s", strings.Join(dims, ","), path)
	doc := map[string]any{
		"description": "Shard-tier node-count sweep: a shard.Router issues a seeded uniform-random plane-read " +
			"workload (16 reads per plane, 4 concurrent workers, replication 1) against N file-backed /planes " +
			"nodes on loopback, each serving one shared WarpX artifact through its own servecache budgeted at " +
			"40% of the artifact's decompressed bytes, after one warming pass. Regenerate with: " + regen,
		"date":   time.Now().Format("2006-01-02"),
		"goos":   runtime.GOOS,
		"goarch": runtime.GOARCH,
		"cpus":   runtime.NumCPU(),
		"note": "Recorded on a single-vCPU container (GOMAXPROCS=1): all nodes, the router and the workers " +
			"share one core, so throughput scaling with node count is pure work elimination — more aggregate " +
			"cache bytes mean fewer store reads and lossless decompressions on the read path — not CPU " +
			"parallelism. On real hardware each node also brings its own cores and NIC and the gap widens.",
		"benchmarks": map[string]any{
			"ShardSweep": map[string]any{
				"field":  fmt.Sprintf("WarpX Jx %v, default codec config, seed %d", p.WarpXDims, p.Seed),
				"points": points,
			},
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
