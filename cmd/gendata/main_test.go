package main

import (
	"os"
	"path/filepath"
	"testing"

	"pmgard/internal/fieldio"
)

func TestGenerateWarpX(t *testing.T) {
	dir := t.TempDir()
	if err := run("warpx", dir, 9, 2, "Jx,Ex", 3, 1, 0.08, 7); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"warpx_Jx_t0000.field", "warpx_Jx_t0001.field",
		"warpx_Ex_t0000.field", "warpx_Ex_t0001.field",
	} {
		meta, f, err := fieldio.Read(filepath.Join(dir, want))
		if err != nil {
			t.Fatalf("%s: %v", want, err)
		}
		if f.Len() != 9*9*9 {
			t.Fatalf("%s: %d values", want, f.Len())
		}
		if meta.Field == "" {
			t.Fatalf("%s: empty field name", want)
		}
	}
}

func TestGenerateGrayScott(t *testing.T) {
	dir := t.TempDir()
	if err := run("grayscott", dir, 17, 1, "", 0, 0, 0, 42); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 { // Du and Dv
		t.Fatalf("generated %d files, want 2", len(entries))
	}
}

func TestGenerateValidation(t *testing.T) {
	dir := t.TempDir()
	if err := run("nope", dir, 9, 1, "", 1, 1, 0.1, 1); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run("warpx", dir, 2, 1, "", 1, 1, 0.1, 1); err == nil {
		t.Error("tiny grid accepted")
	}
}
