// Command gendata generates scientific datasets — Gray-Scott reaction-
// diffusion runs and synthetic WarpX laser-wakefield fields — as raw field
// files consumable by cmd/mgard and cmd/train.
//
// Usage:
//
//	gendata -app warpx -out data/ -n 17 -steps 32 -fields Bx,Ex,Jx
//	gendata -app grayscott -out data/ -n 17 -steps 32 -fields Du,Dv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pmgard/internal/fieldio"
	"pmgard/internal/sim/grayscott"
	"pmgard/internal/sim/warpx"
)

func main() {
	var (
		app      = flag.String("app", "warpx", "application: warpx or grayscott")
		out      = flag.String("out", "data", "output directory")
		n        = flag.Int("n", 17, "grid extent per axis")
		steps    = flag.Int("steps", 32, "number of output timesteps")
		fields   = flag.String("fields", "", "comma-separated field names (default: all fields of the app)")
		a0       = flag.Float64("a0", 3, "warpx: laser peak amplitude")
		density  = flag.Float64("density", 1, "warpx: relative electron density")
		duration = flag.Float64("duration", 0.08, "warpx: laser duration (fraction of box)")
		seed     = flag.Int64("seed", 7, "random seed")
	)
	flag.Parse()
	if err := run(*app, *out, *n, *steps, *fields, *a0, *density, *duration, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
}

func run(app, out string, n, steps int, fieldList string, a0, density, duration float64, seed int64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	var names []string
	if fieldList != "" {
		names = strings.Split(fieldList, ",")
	}
	switch app {
	case "warpx":
		if names == nil {
			names = warpx.FieldNames()
		}
		cfg := warpx.Config{
			Dims: []int{n, n, n}, A0: a0, Density: density, Duration: duration, Seed: seed,
		}
		if err := cfg.Validate(); err != nil {
			return err
		}
		for t := 0; t < steps; t++ {
			for _, name := range names {
				field, err := cfg.Field(name, t)
				if err != nil {
					return err
				}
				path := filepath.Join(out, fmt.Sprintf("warpx_%s_t%04d.field", name, t))
				if err := fieldio.Write(path, fieldio.Meta{Field: name, Timestep: t}, field); err != nil {
					return err
				}
			}
			fmt.Printf("t=%d: wrote %d fields\n", t, len(names))
		}
	case "grayscott":
		if names == nil {
			names = grayscott.FieldNames()
		}
		cfg := grayscott.DefaultConfig(n)
		cfg.Seed = seed
		sim, err := grayscott.New(cfg)
		if err != nil {
			return err
		}
		for t := 0; t < steps; t++ {
			sim.Step()
			for _, name := range names {
				field, err := sim.Field(name)
				if err != nil {
					return err
				}
				path := filepath.Join(out, fmt.Sprintf("grayscott_%s_t%04d.field", name, t))
				if err := fieldio.Write(path, fieldio.Meta{Field: name, Timestep: t}, field); err != nil {
					return err
				}
			}
			fmt.Printf("t=%d: wrote %d fields\n", t, len(names))
		}
	default:
		return fmt.Errorf("unknown app %q (have warpx, grayscott)", app)
	}
	return nil
}
